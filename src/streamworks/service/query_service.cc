#include "streamworks/service/query_service.h"

#include "streamworks/common/logging.h"

namespace streamworks {

std::string_view SubscriptionStateName(SubscriptionState state) {
  switch (state) {
    case SubscriptionState::kActive:
      return "active";
    case SubscriptionState::kPaused:
      return "paused";
    case SubscriptionState::kDetached:
      return "detached";
  }
  return "unknown";
}

QueryService::QueryService(QueryBackend* backend, ServiceLimits limits)
    : backend_(backend), limits_(limits) {
  SW_CHECK_GT(limits_.max_queries_per_session, 0);
  SW_CHECK_GT(limits_.default_queue_capacity, 0u);
}

QueryService::~QueryService() {
  std::lock_guard<std::mutex> lock(mu_);
  // Close every queue first so no backend worker is left blocked in a
  // kBlock Push (which would wedge the unregisters below).
  for (auto& [id, sub] : subscriptions_) {
    if (sub.state != SubscriptionState::kDetached) {
      sub.delivery->queue.Close();
    }
  }
  for (auto& [id, sub] : subscriptions_) {
    if (sub.state == SubscriptionState::kDetached) continue;
    backend_->Unregister(sub.backend_query_id).ok();
    sub.state = SubscriptionState::kDetached;
  }
}

StatusOr<int> QueryService::OpenSession(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, s] : sessions_) {
    if (s.open && s.name == name) {
      return Status::AlreadyExists("session name already open: " + name);
    }
  }
  Session session;
  session.id = next_session_id_++;
  session.name = std::move(name);
  const int id = session.id;
  sessions_.emplace(id, std::move(session));
  ++sessions_opened_;
  return id;
}

QueryService::Session* QueryService::FindOpenSession(int session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return nullptr;
  return it->second.open ? &it->second : nullptr;
}

QueryService::Subscription* QueryService::FindSubscription(
    int session_id, int subscription_id) {
  auto it = subscriptions_.find(subscription_id);
  if (it == subscriptions_.end()) return nullptr;
  return it->second.session_id == session_id ? &it->second : nullptr;
}

const QueryService::Subscription* QueryService::FindSubscription(
    int session_id, int subscription_id) const {
  return const_cast<QueryService*>(this)->FindSubscription(session_id,
                                                           subscription_id);
}

size_t QueryService::TotalLivePartialMatches() {
  size_t total = 0;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.state == SubscriptionState::kDetached) continue;
    auto info = backend_->Info(sub.backend_query_id);
    if (info.ok()) total += info->live_partial_matches;
  }
  return total;
}

StatusOr<int> QueryService::Submit(int session_id, const QueryGraph& query,
                                   SubmitOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindOpenSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown or closed session id");
  }
  ++submissions_;
  ++session->submissions;

  int live = 0;
  for (int sid : session->subscription_ids) {
    if (subscriptions_.at(sid).state != SubscriptionState::kDetached) ++live;
  }
  if (live >= limits_.max_queries_per_session) {
    ++rejected_session_quota_;
    ++session->rejected;
    return Status::ResourceExhausted(
        "session query quota exceeded (max " +
        std::to_string(limits_.max_queries_per_session) + ")");
  }
  if (limits_.live_partial_match_budget > 0 &&
      TotalLivePartialMatches() >= limits_.live_partial_match_budget) {
    ++rejected_partial_budget_;
    ++session->rejected;
    return Status::ResourceExhausted(
        "service live partial-match budget exhausted");
  }

  const size_t capacity = options.queue_capacity > 0
                              ? options.queue_capacity
                              : limits_.default_queue_capacity;
  const OverflowPolicy policy =
      options.policy.value_or(limits_.default_policy);
  auto delivery = std::make_shared<DeliveryState>(capacity, policy);
  {
    std::lock_guard<std::mutex> registry_lock(queue_registry_mu_);
    std::erase_if(queue_registry_,
                  [](const std::weak_ptr<ResultQueue>& weak) {
                    return weak.expired();
                  });
    queue_registry_.push_back(
        std::shared_ptr<ResultQueue>(delivery, &delivery->queue));
  }

  // The callback owns a reference to the delivery state, so it stays valid
  // even if it races a detach on another shard's last in-flight edge.
  // The pipeline sink is captured by value at submit time (the sink is
  // wired once at deployment setup and outlives every subscription).
  PipelineMetrics* const pipeline = pipeline_;
  const int sub_id_hint = next_subscription_id_;
  auto callback = [delivery, pipeline, session_id,
                   sub_id_hint](const CompleteMatch& cm) {
    if (delivery->paused.load(std::memory_order_acquire)) {
      delivery->suppressed_while_paused.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    // Render here, on the delivering thread: the one point where cm.graph
    // is safe against concurrent ingest. Consumers (EVENT pump, POLL)
    // print the pre-rendered text instead of touching the graph.
    CompleteMatch queued = cm;
    queued.rendered = cm.match.ToExternalString(*cm.graph);
    if (pipeline == nullptr) {
      delivery->queue.Push(std::move(queued));
      return;
    }
    const uint64_t t0 = PipelineMetrics::NowMicros();
    delivery->queue.Push(std::move(queued));
    // kBlock queues make this stage the end-to-end throttling point, so a
    // slow consumer shows up here — exactly what the trace ring is for.
    pipeline->Record(PipelineStage::kEnqueue,
                     PipelineMetrics::NowMicros() - t0, session_id,
                     sub_id_hint);
  };

  auto registered = backend_->Register(query, options.strategy,
                                       options.window, std::move(callback));
  if (!registered.ok()) {
    ++rejected_other_;
    ++session->rejected;
    return registered.status();
  }

  Subscription sub;
  sub.id = next_subscription_id_++;
  sub.session_id = session_id;
  sub.backend_query_id = registered.value();
  sub.query_name = query.name();
  sub.window = options.window;
  sub.delivery = std::move(delivery);
  sub.tag = options.tag;
  sub.query = query;
  sub.strategy = options.strategy;
  session->subscription_ids.push_back(sub.id);
  const int id = sub.id;
  subscriptions_.emplace(id, std::move(sub));
  ++admitted_;
  ++session->admitted;
  return id;
}

Status QueryService::Pause(int session_id, int subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription* sub = FindSubscription(session_id, subscription_id);
  if (sub == nullptr) return Status::NotFound("unknown subscription");
  if (sub->state != SubscriptionState::kActive) {
    return Status::FailedPrecondition(
        "can only pause an active subscription (state is " +
        std::string(SubscriptionStateName(sub->state)) + ")");
  }
  sub->state = SubscriptionState::kPaused;
  sub->delivery->paused.store(true, std::memory_order_release);
  ++pauses_;
  return OkStatus();
}

Status QueryService::Resume(int session_id, int subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription* sub = FindSubscription(session_id, subscription_id);
  if (sub == nullptr) return Status::NotFound("unknown subscription");
  if (sub->state != SubscriptionState::kPaused) {
    return Status::FailedPrecondition(
        "can only resume a paused subscription (state is " +
        std::string(SubscriptionStateName(sub->state)) + ")");
  }
  sub->state = SubscriptionState::kActive;
  sub->delivery->paused.store(false, std::memory_order_release);
  ++resumes_;
  return OkStatus();
}

Status QueryService::DetachLocked(Session& session, Subscription& sub) {
  if (sub.state == SubscriptionState::kDetached) {
    return Status::FailedPrecondition("subscription already detached");
  }
  // Close the queue BEFORE unregistering: a kBlock producer stuck in
  // Push on a backend worker would otherwise keep its shard from ever
  // quiescing, deadlocking the unregister. Post-close completions racing
  // the unregister are counted as drops — detach discards them by
  // definition; already-queued matches stay drainable.
  sub.delivery->queue.Close();
  SW_RETURN_IF_ERROR(backend_->Unregister(sub.backend_query_id));
  sub.state = SubscriptionState::kDetached;
  sub.detached_epoch = control_epoch_;
  ++detaches_;
  ++session.detaches;
  return OkStatus();
}

Status QueryService::Detach(int session_id, int subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindOpenSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown or closed session id");
  }
  Subscription* sub = FindSubscription(session_id, subscription_id);
  if (sub == nullptr) return Status::NotFound("unknown subscription");
  return DetachLocked(*session, *sub);
}

Status QueryService::CloseSession(int session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindOpenSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown or closed session id");
  }
  for (int sid : session->subscription_ids) {
    Subscription& sub = subscriptions_.at(sid);
    if (sub.state != SubscriptionState::kDetached) {
      SW_RETURN_IF_ERROR(DetachLocked(*session, sub));
    }
  }
  session->open = false;
  return OkStatus();
}

void QueryService::FoldReclaimedLocked(const Subscription& sub) {
  // Fold the subscription's delivery history into the persistent
  // baselines before erasing it: service-wide totals are monotonic.
  const ResultQueueCounters counters = sub.delivery->queue.counters();
  reclaimed_enqueued_ += counters.enqueued;
  reclaimed_delivered_ += counters.delivered;
  // Matches still queued at reclaim time are being discarded right here —
  // count them as dropped so enqueued always reconciles against
  // delivered + dropped + live depth.
  reclaimed_dropped_ += counters.dropped + (counters.enqueued -
                                            counters.delivered -
                                            counters.dropped);
  reclaimed_suppressed_ += sub.delivery->suppressed_while_paused.load(
      std::memory_order_relaxed);
  reclaimed_lag_.Merge(sub.delivery->queue.lag_histogram());
}

size_t QueryService::ReclaimAgedLocked() {
  size_t reclaimed = 0;
  for (auto& [session_id, session] : sessions_) {
    if (!session.open) continue;  // closed sessions are ReclaimDetached's
    auto& ids = session.subscription_ids;
    for (size_t i = 0; i < ids.size();) {
      auto it = subscriptions_.find(ids[i]);
      SW_CHECK(it != subscriptions_.end());
      Subscription& sub = it->second;
      const bool aged =
          sub.state == SubscriptionState::kDetached &&
          sub.delivery->queue.size() == 0 &&
          control_epoch_ - sub.detached_epoch >=
              limits_.detached_reclaim_age;
      if (aged) {
        FoldReclaimedLocked(sub);
        subscriptions_.erase(it);
        ids.erase(ids.begin() + static_cast<ptrdiff_t>(i));
        ++reclaimed;
      } else {
        ++i;
      }
    }
  }
  reclaimed_ += reclaimed;
  reclaimed_aged_ += reclaimed;
  return reclaimed;
}

size_t QueryService::ReclaimAged() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReclaimAgedLocked();
}

size_t QueryService::ReclaimDetached(bool drained_in_open_sessions) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t reclaimed = 0;
  for (auto session_it = sessions_.begin(); session_it != sessions_.end();) {
    Session& session = session_it->second;
    auto& ids = session.subscription_ids;
    for (size_t i = 0; i < ids.size();) {
      auto it = subscriptions_.find(ids[i]);
      SW_CHECK(it != subscriptions_.end());
      Subscription& sub = it->second;
      // Reclaimable = detached, and nobody can still legitimately drain
      // it: the session is gone, or (when the caller opted in) the queue
      // has nothing left. The backend dropped its callback (and its
      // DeliveryState ref) when Detach unregistered the query, so erasing
      // here releases the last service-held reference.
      const bool drained = drained_in_open_sessions &&
                           sub.delivery->queue.size() == 0;
      if (sub.state == SubscriptionState::kDetached &&
          (!session.open || drained)) {
        FoldReclaimedLocked(sub);
        subscriptions_.erase(it);
        ids.erase(ids.begin() + i);
        ++reclaimed;
      } else {
        ++i;
      }
    }
    // A closed session with nothing left to drain is itself a tombstone:
    // erase it so connection churn doesn't grow the STATS walk forever.
    if (!session.open && ids.empty()) {
      session_it = sessions_.erase(session_it);
    } else {
      ++session_it;
    }
  }
  reclaimed_ += reclaimed;
  return reclaimed;
}

void QueryService::AdvanceEpochLocked() {
  ++control_epoch_;
  if (limits_.detached_reclaim_age > 0 &&
      limits_.aged_sweep_interval > 0 &&
      control_epoch_ % limits_.aged_sweep_interval == 0) {
    ReclaimAgedLocked();
  }
}

Status QueryService::Feed(const StreamEdge& edge) {
  PipelineMetrics* pipeline = pipeline_;
  const uint64_t t0 = pipeline ? PipelineMetrics::NowMicros() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++edges_fed_;
    AdvanceEpochLocked();
  }
  if (pipeline == nullptr) return backend_->Feed(edge);
  const uint64_t t1 = PipelineMetrics::NowMicros();
  pipeline->Record(PipelineStage::kAdmission, t1 - t0);
  Status status = backend_->Feed(edge);
  pipeline->Record(PipelineStage::kEngineApply,
                   PipelineMetrics::NowMicros() - t1, -1, -1, /*detail=*/1);
  return status;
}

Status QueryService::FeedBatch(const EdgeBatch& batch,
                               size_t* rejected_out) {
  PipelineMetrics* pipeline = pipeline_;
  const uint64_t t0 = pipeline ? PipelineMetrics::NowMicros() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    edges_fed_ += batch.size();
    AdvanceEpochLocked();
  }
  if (pipeline == nullptr) return backend_->FeedBatch(batch, rejected_out);
  const uint64_t t1 = PipelineMetrics::NowMicros();
  pipeline->Record(PipelineStage::kAdmission, t1 - t0);
  Status status = backend_->FeedBatch(batch, rejected_out);
  pipeline->Record(PipelineStage::kEngineApply,
                   PipelineMetrics::NowMicros() - t1, -1, -1,
                   /*detail=*/batch.size());
  return status;
}

void QueryService::Flush() { backend_->Flush(); }

StatusOr<AttachedSession> QueryService::AttachSession(
    std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    if (!session.open || session.name != name) continue;
    if (session.bound) {
      return Status::FailedPrecondition(
          "session '" + std::string(name) +
          "' is already bound to a frontend (only recovery-restored, "
          "not-yet-attached sessions can be adopted)");
    }
    session.bound = true;
    AttachedSession attached;
    attached.session_id = session.id;
    for (int sid : session.subscription_ids) {
      const Subscription& sub = subscriptions_.at(sid);
      if (sub.state == SubscriptionState::kDetached) continue;
      attached.subscriptions.push_back(
          AttachedSubscription{sub.tag, sub.id, sub.state});
    }
    return attached;
  }
  return Status::NotFound("no open session named: " + std::string(name));
}

ServicePersistState QueryService::ExportPersistState() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServicePersistState state;
  for (const auto& [id, session] : sessions_) {
    if (!session.open) continue;
    PersistedSession ps;
    ps.name = session.name;
    for (int sid : session.subscription_ids) {
      const Subscription& sub = subscriptions_.at(sid);
      if (sub.state == SubscriptionState::kDetached) continue;
      PersistedSubscription psub;
      psub.tag = sub.tag;
      psub.query = sub.query;
      psub.window = sub.window;
      psub.strategy = sub.strategy;
      psub.queue_capacity = sub.delivery->queue.capacity();
      psub.policy = sub.delivery->queue.policy();
      psub.paused = sub.state == SubscriptionState::kPaused;
      ps.subscriptions.push_back(std::move(psub));
    }
    state.sessions.push_back(std::move(ps));
  }
  return state;
}

Status QueryService::RestorePersistState(const ServicePersistState& state) {
  // Replays the ordinary control-plane calls: admission control applies
  // (a snapshot can only hold what was admitted before, so with the same
  // limits it re-admits), and each Submit backfills its SJ-Tree from the
  // already-restored window through the backend's suppressed-backfill
  // machinery.
  for (const PersistedSession& ps : state.sessions) {
    SW_ASSIGN_OR_RETURN(const int session_id, OpenSession(ps.name));
    {
      // Restored sessions are born unbound: their owner is whichever
      // tenant comes back and claims them with AttachSession — live
      // OpenSession callers stay bound from birth.
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.at(session_id).bound = false;
    }
    for (const PersistedSubscription& psub : ps.subscriptions) {
      SubmitOptions options;
      options.window = psub.window;
      options.strategy = psub.strategy;
      options.queue_capacity = psub.queue_capacity;
      options.policy = psub.policy;
      options.tag = psub.tag;
      SW_ASSIGN_OR_RETURN(const int sub_id,
                          Submit(session_id, psub.query, options));
      // A kBlock queue's contract ("the producer waits for the
      // consumer") is only sound with a live consumer — which is why
      // the socket frontend auto-streams kBlock submissions. A restored
      // subscription has no consumer until its owner re-attaches, so an
      // active kBlock queue would let any other tenant's feed fill it
      // and block delivery on the control thread, wedging the daemon
      // before the owner can even ATTACH. Restore such subscriptions
      // paused: the attach response surfaces the state, and the owner
      // resumes once its delivery path (STREAM/POLL) is in place.
      if (psub.paused || psub.policy == OverflowPolicy::kBlock) {
        SW_RETURN_IF_ERROR(Pause(session_id, sub_id));
      }
    }
  }
  return OkStatus();
}

ResultQueue* QueryService::queue(int session_id, int subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription* sub = FindSubscription(session_id, subscription_id);
  return sub == nullptr ? nullptr : &sub->delivery->queue;
}

std::shared_ptr<ResultQueue> QueryService::queue_handle(int session_id,
                                                        int subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription* sub = FindSubscription(session_id, subscription_id);
  if (sub == nullptr) return nullptr;
  // Aliasing constructor: shares ownership of the DeliveryState, points at
  // its queue.
  return std::shared_ptr<ResultQueue>(sub->delivery, &sub->delivery->queue);
}

void QueryService::CloseAllQueues() {
  std::lock_guard<std::mutex> lock(queue_registry_mu_);
  for (const std::weak_ptr<ResultQueue>& weak : queue_registry_) {
    if (std::shared_ptr<ResultQueue> queue = weak.lock()) queue->Close();
  }
}

StatusOr<SubscriptionState> QueryService::state(int session_id,
                                                int subscription_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Subscription* sub = FindSubscription(session_id, subscription_id);
  if (sub == nullptr) return Status::NotFound("unknown subscription");
  return sub->state;
}

ServiceStatsSnapshot QueryService::Snapshot() const {
  // Shard gauges come first, before mu_ is taken: ShardLoads quiesces a
  // sharded backend, which waits on workers that may in turn be blocked
  // delivering into a full kBlock queue whose consumer needs mu_ to fetch
  // its queue pointer — holding mu_ across the quiesce would deadlock that
  // cycle (and stall every control-plane call behind the drain even
  // without it). ShardLoads touches no service state, so no lock is
  // needed.
  std::vector<ShardLoadSnapshot> shard_loads = backend_->ShardLoads();
  // The persist probe reads the durability layer's own counters; like
  // ShardLoads it must not run under mu_ (it is service-independent
  // state, and keeping the lock narrow keeps Snapshot cheap).
  PersistCounters persist;
  if (persist_probe_) persist = persist_probe_();
  // The frontend probe only loads atomics, but keep it outside mu_ for the
  // same narrow-lock reason.
  FrontendStatsSnapshot frontend;
  if (frontend_probe_) frontend = frontend_probe_();

  std::lock_guard<std::mutex> lock(mu_);
  ServiceStatsSnapshot snap;
  snap.shards = std::move(shard_loads);
  snap.persist = std::move(persist);
  snap.frontend = frontend;
  snap.sessions_opened = sessions_opened_;
  snap.submissions = submissions_;
  snap.admitted = admitted_;
  snap.rejected_session_quota = rejected_session_quota_;
  snap.rejected_partial_budget = rejected_partial_budget_;
  snap.rejected_other = rejected_other_;
  snap.pauses = pauses_;
  snap.resumes = resumes_;
  snap.detaches = detaches_;
  snap.reclaimed = reclaimed_;
  snap.reclaimed_aged = reclaimed_aged_;
  snap.edges_fed = edges_fed_;

  snap.matches_enqueued = reclaimed_enqueued_;
  snap.matches_delivered = reclaimed_delivered_;
  snap.matches_dropped = reclaimed_dropped_;
  snap.matches_suppressed = reclaimed_suppressed_;
  LagHistogram merged_lag = reclaimed_lag_;
  for (const auto& [session_id, session] : sessions_) {
    SessionStatsSnapshot ss;
    ss.session_id = session.id;
    ss.name = session.name;
    ss.open = session.open;
    ss.submissions = session.submissions;
    ss.admitted = session.admitted;
    ss.rejected = session.rejected;
    ss.detaches = session.detaches;
    for (int sid : session.subscription_ids) {
      const Subscription& sub = subscriptions_.at(sid);
      if (sub.state != SubscriptionState::kDetached) ++ss.live_queries;

      SubscriptionStatsSnapshot sub_snap;
      sub_snap.subscription_id = sub.id;
      sub_snap.session_id = sub.session_id;
      sub_snap.query_name = sub.query_name;
      sub_snap.state = std::string(SubscriptionStateName(sub.state));
      sub_snap.policy =
          std::string(OverflowPolicyName(sub.delivery->queue.policy()));
      sub_snap.window = sub.window;
      const ResultQueueCounters counters = sub.delivery->queue.counters();
      sub_snap.enqueued = counters.enqueued;
      sub_snap.delivered = counters.delivered;
      sub_snap.dropped = counters.dropped;
      sub_snap.suppressed_while_paused =
          sub.delivery->suppressed_while_paused.load(
              std::memory_order_relaxed);
      sub_snap.queue_depth = sub.delivery->queue.size();

      snap.matches_enqueued += sub_snap.enqueued;
      snap.matches_delivered += sub_snap.delivered;
      snap.matches_dropped += sub_snap.dropped;
      snap.matches_suppressed += sub_snap.suppressed_while_paused;
      merged_lag.Merge(sub.delivery->queue.lag_histogram());

      ss.subscriptions.push_back(std::move(sub_snap));
    }
    snap.sessions.push_back(std::move(ss));
  }
  snap.delivery_lag_p50_us = merged_lag.Quantile(0.5);
  snap.delivery_lag_p99_us = merged_lag.Quantile(0.99);
  snap.delivery_lag = merged_lag;
  return snap;
}

std::vector<QueryObsSnapshot> QueryService::QueryInfos() {
  // Phase 1: collect identity rows under mu_. Backend Info() calls quiesce
  // shards, so they happen after the lock is released (same contract as
  // Snapshot's ShardLoads ordering). This method is control-thread-only,
  // so no subscription can detach between the two phases.
  struct Row {
    QueryObsSnapshot snap;
    int backend_query_id = -1;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [sid, sub] : subscriptions_) {
      if (sub.state == SubscriptionState::kDetached) continue;
      Row row;
      row.snap.session_id = sub.session_id;
      row.snap.subscription_id = sub.id;
      auto session_it = sessions_.find(sub.session_id);
      if (session_it != sessions_.end()) {
        row.snap.session_name = session_it->second.name;
      }
      row.snap.query_name = sub.query_name;
      row.snap.tag = sub.tag;
      row.snap.state = std::string(SubscriptionStateName(sub.state));
      row.backend_query_id = sub.backend_query_id;
      rows.push_back(std::move(row));
    }
  }
  std::vector<QueryObsSnapshot> out;
  out.reserve(rows.size());
  for (Row& row : rows) {
    StatusOr<QueryRuntimeInfo> info = backend_->Info(row.backend_query_id);
    if (info.ok()) row.snap.info = std::move(info.value());
    out.push_back(std::move(row.snap));
  }
  return out;
}

}  // namespace streamworks
