#ifndef STREAMWORKS_SERVICE_METRICS_H_
#define STREAMWORKS_SERVICE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "streamworks/common/histogram.h"
#include "streamworks/common/types.h"

namespace streamworks {

/// Delivery-lag histogram (microsecond samples recorded at pop time). The
/// implementation generalized into common/histogram.h so pipeline-stage
/// timing shares it; the name stays for the service-layer call sites.
using LagHistogram = Histogram;

/// Point-in-time per-shard load of the backend's engine group (empty for
/// single-engine deployments). `sharding` names the mode ("broadcast" /
/// "partitioned" plus the partitioner); the forwarded/received counters are
/// the cross-shard match exchange's and stay zero under broadcast. The
/// memory story of vertex partitioning reads directly off `retained_edges`:
/// broadcast retains the whole window on every shard, partitioned only the
/// shard's owned edges.
struct ShardLoadSnapshot {
  int shard = 0;
  std::string sharding;
  uint64_t retained_edges = 0;
  uint64_t retained_vertices = 0;
  uint64_t evicted_edges = 0;
  uint64_t edges_processed = 0;
  uint64_t completions = 0;
  uint64_t live_partial_matches = 0;
  uint64_t matches_forwarded = 0;  ///< Exchange items this shard sent.
  uint64_t matches_received = 0;   ///< Exchange items this shard executed.
};

/// Point-in-time counters of the durability subsystem (persist/), pulled
/// into the service snapshot through QueryService::set_persist_probe so
/// STATS surfaces them without the service depending on the persistence
/// layer. All zero (enabled=false) when the deployment runs without a
/// data dir.
struct PersistCounters {
  bool enabled = false;
  uint64_t wal_seq = 0;          ///< Next WAL edge sequence (edges logged).
  uint64_t wal_records = 0;      ///< WAL records appended this process.
  uint64_t wal_edges = 0;        ///< Edges those records carried.
  uint64_t wal_bytes = 0;        ///< Bytes appended to WAL segments.
  uint64_t wal_segments = 0;     ///< Segment files currently on disk.
  uint64_t wal_fsyncs = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
  uint64_t last_snapshot_wal_seq = 0;
  uint64_t recovered_window_edges = 0;  ///< Edges restored from the snapshot.
  uint64_t recovered_sessions = 0;
  uint64_t recovered_subscriptions = 0;
  uint64_t replayed_edges = 0;   ///< WAL-tail edges re-fed at recovery.
};

/// Point-in-time load of one frontend IO loop (connections owned, pump
/// drain-pass flushes) — the per-loop split of the frontend sums, which is
/// where sharding skew and a slow consumer's throttled loop become
/// visible.
struct IoLoopStatsSnapshot {
  int loop = 0;
  uint64_t connections = 0;
  uint64_t pump_flushes = 0;
};

/// Point-in-time counters of the network frontend (the socket server's
/// ServerStats), pulled into the service snapshot through
/// QueryService::set_frontend_probe so a live daemon's wire activity —
/// pump flushes, FEEDB frames, batched edges — shows up in STATS instead
/// of only in the SHUTDOWN banner. The probe reads atomics, so unlike the
/// persist probe it is safe from any thread. All zero (enabled=false) for
/// in-process deployments without a socket frontend.
struct FrontendStatsSnapshot {
  bool enabled = false;
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;
  uint64_t connections_closed = 0;
  uint64_t lines_executed = 0;
  uint64_t frames_executed = 0;  ///< Binary FEEDB frames executed.
  uint64_t batch_edges_in = 0;   ///< Edges carried by those frames.
  uint64_t protocol_errors = 0;
  uint64_t events_pushed = 0;
  uint64_t pump_flushes = 0;
  uint64_t http_requests = 0;    ///< Observability endpoint requests served.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t subscriptions_reclaimed = 0;
  /// Per-IO-loop split (empty when the frontend predates loops or is off).
  std::vector<IoLoopStatsSnapshot> io_loops;
};

/// Point-in-time counters for one subscription. `state` and `policy` are
/// rendered as strings so this header stays free of service-layer types.
struct SubscriptionStatsSnapshot {
  int subscription_id = -1;
  int session_id = -1;
  std::string query_name;
  std::string state;    ///< "active" | "paused" | "detached".
  std::string policy;   ///< Overflow policy name.
  Timestamp window = 0;
  uint64_t enqueued = 0;    ///< Matches accepted into the result queue.
  uint64_t delivered = 0;   ///< Matches popped by the consumer.
  uint64_t dropped = 0;     ///< Matches lost to overflow (or post-close).
  uint64_t suppressed_while_paused = 0;
  size_t queue_depth = 0;   ///< Matches currently waiting in the queue.
};

/// Point-in-time counters for one session.
struct SessionStatsSnapshot {
  int session_id = -1;
  std::string name;
  bool open = true;
  uint64_t submissions = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t detaches = 0;
  int live_queries = 0;
  std::vector<SubscriptionStatsSnapshot> subscriptions;
};

/// Service-wide snapshot returned by QueryService::Snapshot() — the one
/// introspection call aggregating admission, delivery, and lag counters
/// across every session.
struct ServiceStatsSnapshot {
  uint64_t sessions_opened = 0;
  uint64_t submissions = 0;
  uint64_t admitted = 0;
  uint64_t rejected_session_quota = 0;
  uint64_t rejected_partial_budget = 0;
  uint64_t rejected_other = 0;   ///< Planner/validation failures.
  uint64_t pauses = 0;
  uint64_t resumes = 0;
  uint64_t detaches = 0;
  uint64_t reclaimed = 0;  ///< Detached subscriptions compacted away.
  /// Subset of `reclaimed` taken by the age-based sweep: drained detached
  /// subscriptions in still-open sessions whose owner never collected
  /// them within the configured epoch threshold.
  uint64_t reclaimed_aged = 0;
  uint64_t edges_fed = 0;

  uint64_t matches_enqueued = 0;
  uint64_t matches_delivered = 0;
  uint64_t matches_dropped = 0;
  uint64_t matches_suppressed = 0;

  uint64_t delivery_lag_p50_us = 0;
  uint64_t delivery_lag_p99_us = 0;
  /// The merged per-queue delivery-lag histogram the percentiles above
  /// were read from — exported whole so /metrics can render the full
  /// bucket series, not just two quantiles.
  LagHistogram delivery_lag;

  std::vector<SessionStatsSnapshot> sessions;
  /// Per-shard backend load (empty for single-engine backends).
  std::vector<ShardLoadSnapshot> shards;
  /// Durability counters (enabled=false without a persistence layer).
  PersistCounters persist;
  /// Network frontend counters (enabled=false without a socket server).
  FrontendStatsSnapshot frontend;

  /// Multi-line fixed-width rendering (the STATS command's output).
  std::string ToString() const;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SERVICE_METRICS_H_
