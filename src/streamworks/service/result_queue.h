#ifndef STREAMWORKS_SERVICE_RESULT_QUEUE_H_
#define STREAMWORKS_SERVICE_RESULT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string_view>
#include <vector>

#include "streamworks/common/statusor.h"
#include "streamworks/core/engine.h"
#include "streamworks/service/metrics.h"

namespace streamworks {

/// What a full ResultQueue does with the next incoming match.
enum class OverflowPolicy {
  kBlock,       ///< Producer blocks until the consumer frees a slot.
  kDropOldest,  ///< Evict the oldest queued match to admit the new one.
  kDropNewest,  ///< Discard the incoming match, keep the queue as-is.
};

/// Short stable name ("block", "drop_oldest", "drop_newest").
std::string_view OverflowPolicyName(OverflowPolicy policy);

/// Inverse of OverflowPolicyName; case-insensitive. InvalidArgument on an
/// unknown name.
StatusOr<OverflowPolicy> ParseOverflowPolicy(std::string_view name);

/// Monotonic counters of one queue's traffic.
struct ResultQueueCounters {
  uint64_t enqueued = 0;   ///< Accepted into the queue.
  uint64_t delivered = 0;  ///< Handed to the consumer by a pop.
  uint64_t dropped = 0;    ///< Lost to overflow or pushed after Close().
};

/// Bounded MPSC handoff between engine callbacks (producers, running on
/// worker threads) and one subscriber (consumer): the decoupling layer that
/// keeps a slow consumer from stalling the stream — unless it asks for
/// exactly that with kBlock.
///
/// Close() severs the producer side (further pushes count as drops and a
/// blocked producer wakes immediately) while the consumer may still drain
/// what was delivered before the close. Delivery lag — enqueue to pop, wall
/// clock — is recorded per pop into a LagHistogram.
class ResultQueue {
 public:
  ResultQueue(size_t capacity, OverflowPolicy policy);

  ResultQueue(const ResultQueue&) = delete;
  ResultQueue& operator=(const ResultQueue&) = delete;

  // --- Producer side -------------------------------------------------------
  /// Offers one match under the overflow policy. Only kBlock can block.
  void Push(CompleteMatch match);

  // --- Consumer side -------------------------------------------------------
  /// Pops the oldest queued match; false if the queue is empty.
  bool TryPop(CompleteMatch* out);

  /// Pops the oldest queued match, waiting up to `timeout` for one to
  /// arrive. False on timeout or when the queue is closed and empty.
  bool WaitPop(CompleteMatch* out,
               std::chrono::milliseconds timeout = std::chrono::milliseconds(
                   100));

  /// Appends everything queued to *out; returns how many were drained.
  size_t Drain(std::vector<CompleteMatch>* out);

  /// Like Drain but bounded: pops at most `max` matches under one lock
  /// acquisition — how a consumer with its own budget (the socket
  /// server's write high-water) drains in coalesced chunks instead of a
  /// lock round-trip per match.
  size_t DrainUpTo(std::vector<CompleteMatch>* out, size_t max);

  /// Stops the producer side. Idempotent.
  void Close();

  // --- Introspection -------------------------------------------------------
  size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }
  bool closed() const;
  size_t size() const;
  ResultQueueCounters counters() const;
  /// Copy of the delivery-lag histogram (samples recorded at pop time).
  LagHistogram lag_histogram() const;

 private:
  struct Entry {
    CompleteMatch match;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// Pops the front entry into *out and records its lag. mu_ must be held.
  void PopFrontLocked(CompleteMatch* out);

  const size_t capacity_;
  const OverflowPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;  ///< Signals producers (kBlock).
  std::condition_variable cv_items_;  ///< Signals the consumer.
  std::deque<Entry> queue_;
  bool closed_ = false;
  ResultQueueCounters counters_;
  LagHistogram lag_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SERVICE_RESULT_QUEUE_H_
