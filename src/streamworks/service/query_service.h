#ifndef STREAMWORKS_SERVICE_QUERY_SERVICE_H_
#define STREAMWORKS_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "streamworks/common/thread_annotations.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/metrics.h"
#include "streamworks/service/result_queue.h"

namespace streamworks {

/// Lifecycle of one subscription (a continuous query owned by a session):
///
///   Submit --> kActive <--> kPaused        (Pause / Resume)
///                 |            |
///                 +--> kDetached <--+      (Detach; terminal)
///
/// While paused the engine keeps maintaining the query's partial matches
/// (so a resume sees matches spanning the pause), but completions are
/// suppressed at the delivery boundary instead of entering the result
/// queue. Detach unregisters the query from the backend and closes the
/// queue; already-queued matches stay drainable.
enum class SubscriptionState { kActive, kPaused, kDetached };

std::string_view SubscriptionStateName(SubscriptionState state);

/// Admission-control and defaulting knobs of a QueryService.
struct ServiceLimits {
  /// Live (non-detached) subscriptions allowed per session.
  int max_queries_per_session = 8;
  /// Service-wide budget of live partial matches across all live
  /// subscriptions; a Submit that finds the budget already exhausted is
  /// rejected. 0 = unlimited.
  size_t live_partial_match_budget = 1u << 20;
  /// Result-queue capacity when SubmitOptions doesn't pick one.
  size_t default_queue_capacity = 1024;
  /// Overflow policy when SubmitOptions doesn't pick one.
  OverflowPolicy default_policy = OverflowPolicy::kDropOldest;
  /// Age-based reclamation of detached-and-drained subscriptions in
  /// still-open sessions, in *control epochs* (each Feed/FeedBatch call
  /// advances the epoch by one). A long-lived tenant that detaches a
  /// subscription, drains it, and never touches it again would otherwise
  /// pin its DeliveryState until the session closes. 0 disables; the
  /// sweep itself runs every aged_sweep_interval epochs on the control
  /// path (no clock, no extra thread).
  uint64_t detached_reclaim_age = 0;
  uint64_t aged_sweep_interval = 256;
};

/// Per-submission knobs.
struct SubmitOptions {
  Timestamp window = kMaxTimestamp;
  DecompositionStrategy strategy = DecompositionStrategy::kSelectivityLeftDeep;
  size_t queue_capacity = 0;  ///< 0 = service default.
  std::optional<OverflowPolicy> policy;
  /// Client-visible subscription name, persisted with the subscription so
  /// a recovered session can be re-attached by name (the interpreter
  /// passes its "<sub>" token). Optional; "" stays anonymous.
  std::string tag;
};

/// Durable image of one live subscription: everything Submit needs to
/// recreate it (the query pattern itself rides along — recovery cannot
/// re-parse what a remote tenant defined in a dead connection).
struct PersistedSubscription {
  std::string tag;
  QueryGraph query;
  Timestamp window = kMaxTimestamp;
  DecompositionStrategy strategy = DecompositionStrategy::kSelectivityLeftDeep;
  size_t queue_capacity = 0;
  OverflowPolicy policy = OverflowPolicy::kDropOldest;
  bool paused = false;
};

/// Durable image of one open session.
struct PersistedSession {
  std::string name;
  std::vector<PersistedSubscription> subscriptions;
};

/// What a snapshot persists of the service control plane: every open
/// session and its live subscriptions. Detached subscriptions and closed
/// sessions are deliberately absent — their only remaining value is
/// undrained queue contents, and queues do not survive a crash
/// (delivery is at-most-once across process death; see README).
struct ServicePersistState {
  std::vector<PersistedSession> sessions;
};

/// One live query's runtime detail as the observability layer exports it
/// (/queries.json): backend runtime info — including per-SJ-Tree-node
/// counters — plus the session/subscription identity it belongs to.
struct QueryObsSnapshot {
  int session_id = -1;
  int subscription_id = -1;
  std::string session_name;
  std::string query_name;
  std::string tag;    ///< Client-visible subscription name ("" anonymous).
  std::string state;  ///< "active" | "paused".
  QueryRuntimeInfo info;
};

/// Result of re-attaching a recovered session by name: the live ids a
/// frontend needs to rebind its name maps.
struct AttachedSubscription {
  std::string tag;
  int subscription_id = -1;
  SubscriptionState state = SubscriptionState::kActive;
};
struct AttachedSession {
  int session_id = -1;
  std::vector<AttachedSubscription> subscriptions;
};

/// Multi-tenant continuous-query front door: sessions own subscriptions,
/// subscriptions own result queues, and the service mediates between them
/// and one QueryBackend — admission control on the way in (per-session
/// quota, service-wide partial-match budget), per-subscription flow control
/// on the way out (bounded queues with selectable overflow policy), and a
/// lifecycle (pause / resume / detach) the raw engine doesn't have.
///
/// Threading: control-plane calls (Open/Close/Submit/Pause/Resume/Detach/
/// Feed/Snapshot) are serialized by the caller or an internal mutex —
/// serialized control is the expected shape, matching the backend
/// contract. The multi-loop socket frontend honors it by funneling every
/// loop's interpreter calls through one control mutex (see net/server.h);
/// in-process embedders usually just call from one thread. Match delivery
/// runs on backend threads and only touches each subscription's queue and
/// atomics, so consumers may drain queues from any thread at any time.
class QueryService {
 public:
  /// `backend` must outlive the service.
  explicit QueryService(QueryBackend* backend, ServiceLimits limits = {});

  /// Detaches every live subscription.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Sessions ------------------------------------------------------------
  /// Opens a session and returns its id. Names must be unique among open
  /// sessions (they address sessions in the line protocol).
  StatusOr<int> OpenSession(std::string name);

  /// Detaches all of the session's live subscriptions and closes it.
  Status CloseSession(int session_id);

  /// Re-binds an *unbound* open session by name (the recovery flow: a
  /// tenant reconnecting after a crash re-claims the session a snapshot
  /// restored, instead of colliding with its own name on OpenSession).
  /// Returns the session id plus every non-detached subscription's tag
  /// and id so the frontend can rebuild its name maps. NotFound when no
  /// open session has that name; FailedPrecondition when it is already
  /// bound — sessions opened live (OpenSession) are born bound to their
  /// creator, and an attach claims the session exactly once, so one
  /// tenant can never adopt (and, via its own disconnect, close) another
  /// tenant's live session by guessing its name.
  StatusOr<AttachedSession> AttachSession(std::string_view name);

  // --- Subscription lifecycle ----------------------------------------------
  /// Admission control, then registers `query` on the backend and wires
  /// its completions into a fresh ResultQueue. Returns the subscription
  /// id. ResourceExhausted when the session's quota or the service's
  /// partial-match budget is exceeded.
  StatusOr<int> Submit(int session_id, const QueryGraph& query,
                       SubmitOptions options = {});

  /// Suppresses delivery (matches completing while paused are counted,
  /// not queued). FailedPrecondition unless the subscription is active.
  Status Pause(int session_id, int subscription_id);

  /// Re-enables delivery. FailedPrecondition unless paused.
  Status Resume(int session_id, int subscription_id);

  /// Unregisters the query from the backend and closes the queue
  /// (queued matches stay drainable). Terminal; idempotent calls fail
  /// with FailedPrecondition.
  Status Detach(int session_id, int subscription_id);

  // --- Streaming -----------------------------------------------------------
  /// Forwards one edge to the backend.
  Status Feed(const StreamEdge& edge);
  /// Forwards a whole batch on the backend's batched fast path; when
  /// `rejected_out` is non-null it receives the count of malformed edges
  /// the backend skipped (0 for asynchronous backends).
  Status FeedBatch(const EdgeBatch& batch, size_t* rejected_out = nullptr);
  /// Blocks until the backend has processed everything fed so far.
  void Flush();

  // --- Reclamation ---------------------------------------------------------
  /// Compacts the subscription and session tables: every detached
  /// subscription whose results nobody can still want is dropped from the
  /// tables, and its DeliveryState is released (the delivery callback's
  /// shared_ptr is the refcount: the backend dropped its copy at
  /// Unregister, so the state frees as soon as the last queue_handle
  /// holder lets go). Closed sessions whose last subscription was
  /// reclaimed are erased too, so a connection-churning frontend doesn't
  /// accumulate tombstone sessions in every STATS walk. Returns how many
  /// subscriptions were reclaimed. After reclamation the ids answer
  /// NotFound and queue() returns nullptr — callers who need the queue
  /// across a reclaim hold a queue_handle.
  ///
  /// A closed session's detached subscriptions always qualify. With
  /// `drained_in_open_sessions` (the explicit-compaction default), a
  /// fully-drained detached subscription in a still-open session
  /// qualifies as well; the socket frontend's disconnect path passes
  /// false so one tenant's disconnect never changes what another tenant's
  /// open session observes (a drained POLL stays "n=0", it doesn't flip
  /// to NotFound because an unrelated connection went away).
  size_t ReclaimDetached(bool drained_in_open_sessions = true);

  /// Age-based sweep (the other half of reclamation): reclaims every
  /// detached subscription in a still-open session whose queue is fully
  /// drained and whose detach happened at least
  /// limits().detached_reclaim_age control epochs ago. Runs
  /// automatically from the Feed/FeedBatch control path every
  /// aged_sweep_interval epochs when the age limit is configured; also
  /// callable directly. Returns how many were reclaimed.
  size_t ReclaimAged();

  // --- Durability -----------------------------------------------------------
  /// Durable image of the control plane (open sessions + live
  /// subscriptions), for the snapshot writer.
  ServicePersistState ExportPersistState() const;

  /// Recreates sessions and subscriptions from a snapshot image through
  /// the ordinary Submit path — the backend backfills each query's
  /// SJ-Tree from the (already restored) window, paused subscriptions
  /// come back paused, and kBlock subscriptions come back paused too
  /// (blocking needs a live consumer; none exists until the owner
  /// re-attaches and resumes). Restored sessions are unbound until one
  /// AttachSession claims each. Call on a freshly constructed service,
  /// before any tenant traffic.
  Status RestorePersistState(const ServicePersistState& state);

  /// Installs the durability layer's counter probe; Snapshot() folds its
  /// result into ServiceStatsSnapshot::persist (STATS). The installed
  /// probe reads the durability layer's control-thread state without
  /// synchronization, so a durable deployment must call Snapshot() from
  /// the control thread (which every in-tree caller — the interpreter's
  /// STATS on the poll thread, tests on the main thread — already does).
  void set_persist_probe(std::function<PersistCounters()> probe) {
    persist_probe_ = std::move(probe);
  }

  /// Installs the network frontend's counter probe; Snapshot() folds its
  /// result into ServiceStatsSnapshot::frontend so STATS shows live wire
  /// activity. The probe reads the socket server's atomics, so it is safe
  /// from any thread. The server clears it (nullptr) on Stop.
  void set_frontend_probe(std::function<FrontendStatsSnapshot()> probe) {
    frontend_probe_ = std::move(probe);
  }

  /// Installs the always-on pipeline instrumentation sink. The service
  /// records kAdmission and kEngineApply around Feed/FeedBatch and
  /// kEnqueue inside the delivery callback of every subscription
  /// submitted *after* this call — install at deployment setup, before
  /// tenant traffic. Null (the default) costs one branch per call.
  void set_pipeline_metrics(PipelineMetrics* pipeline) {
    pipeline_ = pipeline;
  }

  // --- Introspection -------------------------------------------------------
  /// The subscription's result queue, or nullptr if the ids are unknown
  /// (including reclaimed). Valid until the subscription is reclaimed or
  /// the service is destroyed (detach alone keeps the queue).
  ResultQueue* queue(int session_id, int subscription_id);

  /// Like queue(), but the returned aliasing shared_ptr keeps the whole
  /// DeliveryState alive while held, so a concurrent ReclaimDetached can
  /// never free it out from under the holder (the socket server's stream
  /// pump drains through this). Null when the ids are unknown.
  std::shared_ptr<ResultQueue> queue_handle(int session_id,
                                            int subscription_id);

  /// Closes every subscription's result queue — blocked kBlock producers
  /// wake (their pushes count as drops) and queued matches stay
  /// drainable. Runs off a dedicated registry mutex, NOT mu_, so it is
  /// callable from any thread even while the control thread is wedged
  /// inside a backend call behind a full kBlock queue; the socket
  /// server's shutdown leans on exactly that to guarantee SIGTERM always
  /// lands. This is a point of no return for deliveries: use only when
  /// tearing the service (or its frontend) down.
  void CloseAllQueues();

  StatusOr<SubscriptionState> state(int session_id,
                                    int subscription_id) const;

  /// One call aggregating every admission / delivery / lag counter, per
  /// subscription, per session, and service-wide.
  ServiceStatsSnapshot Snapshot() const;

  /// Per-query runtime detail for every non-detached subscription: the
  /// backend's QueryRuntimeInfo (completions, live/peak partials, and the
  /// per-SJ-Tree-node match/selectivity counters) joined with the owning
  /// session/subscription identity. Control-thread only — a sharded
  /// backend quiesces its group per Info call.
  std::vector<QueryObsSnapshot> QueryInfos();

  const ServiceLimits& limits() const { return limits_; }

 private:
  /// State shared with the backend's callback; outlives detach via
  /// shared_ptr so a callback racing a detach stays safe.
  struct DeliveryState {
    DeliveryState(size_t capacity, OverflowPolicy policy)
        : queue(capacity, policy) {}
    ResultQueue queue;
    std::atomic<bool> paused{false};
    std::atomic<uint64_t> suppressed_while_paused{0};
  };

  struct Subscription {
    int id = -1;
    int session_id = -1;
    int backend_query_id = -1;
    std::string query_name;
    Timestamp window = 0;
    SubscriptionState state = SubscriptionState::kActive;
    std::shared_ptr<DeliveryState> delivery;
    /// Durable identity + the inputs needed to resubmit after recovery.
    std::string tag;
    QueryGraph query;
    DecompositionStrategy strategy =
        DecompositionStrategy::kSelectivityLeftDeep;
    /// Control epoch at Detach; the aged sweep measures staleness from it.
    uint64_t detached_epoch = 0;
  };

  struct Session {
    int id = -1;
    std::string name;
    bool open = true;
    /// False only for recovery-restored sessions nobody has attached
    /// yet; AttachSession claims exactly the unbound ones.
    bool bound = true;
    uint64_t submissions = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t detaches = 0;
    std::vector<int> subscription_ids;
  };

  Session* FindOpenSession(int session_id);
  Subscription* FindSubscription(int session_id, int subscription_id);
  const Subscription* FindSubscription(int session_id,
                                       int subscription_id) const;

  /// Live partial matches across every live subscription (admission
  /// control's budget probe).
  size_t TotalLivePartialMatches();

  /// Detach with mu_ already held.
  Status DetachLocked(Session& session, Subscription& sub);

  /// Folds a subscription's delivery history into the persistent
  /// baselines (Snapshot totals stay monotonic across any reclamation)
  /// — the shared half of ReclaimDetached and the aged sweep. mu_ held.
  void FoldReclaimedLocked(const Subscription& sub);

  /// The aged sweep's body; mu_ held. Returns subscriptions reclaimed.
  size_t ReclaimAgedLocked();

  /// Ticks the control-path clock and runs the periodic aged sweep when
  /// it is due; mu_ held.
  void AdvanceEpochLocked();

  QueryBackend* backend_;
  ServiceLimits limits_;

  /// Guards sessions_/subscriptions_ and the counters below. Never held
  /// while delivering matches (callbacks bypass the control plane).
  mutable std::mutex mu_;
  /// Both tables are keyed by id; ReclaimDetached erases entries, so ids
  /// are not dense and lookups go through the maps.
  std::map<int, Session> sessions_ SW_GUARDED_BY(mu_);
  std::map<int, Subscription> subscriptions_ SW_GUARDED_BY(mu_);
  int next_session_id_ = 0;
  int next_subscription_id_ = 0;

  uint64_t sessions_opened_ = 0;
  uint64_t submissions_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_session_quota_ = 0;
  uint64_t rejected_partial_budget_ = 0;
  uint64_t rejected_other_ = 0;
  uint64_t pauses_ = 0;
  uint64_t resumes_ = 0;
  uint64_t detaches_ = 0;
  uint64_t reclaimed_ = 0;
  uint64_t reclaimed_aged_ = 0;
  uint64_t edges_fed_ = 0;
  /// Advances once per Feed/FeedBatch call — the control-path clock the
  /// aged sweep measures detachment staleness against.
  uint64_t control_epoch_ = 0;

  std::function<PersistCounters()> persist_probe_;
  std::function<FrontendStatsSnapshot()> frontend_probe_;
  PipelineMetrics* pipeline_ = nullptr;

  /// Folded-in history of reclaimed subscriptions, so the service-wide
  /// match counters and lag percentiles in Snapshot stay monotonic across
  /// compaction (a scrape must never see delivered= go backward because a
  /// tenant disconnected).
  uint64_t reclaimed_enqueued_ = 0;
  uint64_t reclaimed_delivered_ = 0;
  uint64_t reclaimed_dropped_ = 0;
  uint64_t reclaimed_suppressed_ = 0;
  LagHistogram reclaimed_lag_;

  /// Every queue ever created, as weak aliasing handles; guarded by its
  /// own mutex (never mu_) so CloseAllQueues can run while mu_ is held by
  /// a wedged control-plane call. Expired entries are pruned on insert.
  mutable std::mutex queue_registry_mu_;
  std::vector<std::weak_ptr<ResultQueue>> queue_registry_
      SW_GUARDED_BY(queue_registry_mu_);
};

}  // namespace streamworks

#endif  // STREAMWORKS_SERVICE_QUERY_SERVICE_H_
