#include "streamworks/service/metrics.h"

#include <bit>
#include <sstream>

namespace streamworks {

void LagHistogram::Record(uint64_t lag_us) {
  int bucket = lag_us == 0 ? 0 : std::bit_width(lag_us);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  ++counts_[bucket];
  ++total_count_;
}

void LagHistogram::Merge(const LagHistogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) counts_[b] += other.counts_[b];
  total_count_ += other.total_count_;
}

uint64_t LagHistogram::Quantile(double q) const {
  if (total_count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample, 1-based; ceil so Quantile(1.0) lands in the
  // last occupied bucket.
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total_count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      return b == 0 ? 0 : (uint64_t{1} << b) - 1;  // bucket upper bound
    }
  }
  return (uint64_t{1} << (kNumBuckets - 1)) - 1;
}

std::string ServiceStatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "service: sessions=" << sessions_opened
     << " submissions=" << submissions << " admitted=" << admitted
     << " rejected(quota=" << rejected_session_quota
     << ",budget=" << rejected_partial_budget << ",other=" << rejected_other
     << ")"
     << " pauses=" << pauses << " resumes=" << resumes
     << " detaches=" << detaches << " reclaimed=" << reclaimed
     << " reclaimed_aged=" << reclaimed_aged
     << " edges_fed=" << edges_fed << "\n";
  os << "matches: enqueued=" << matches_enqueued
     << " delivered=" << matches_delivered << " dropped=" << matches_dropped
     << " suppressed=" << matches_suppressed
     << " lag_p50_us=" << delivery_lag_p50_us
     << " lag_p99_us=" << delivery_lag_p99_us << "\n";
  if (persist.enabled) {
    os << "persist: wal_seq=" << persist.wal_seq
       << " wal_records=" << persist.wal_records
       << " wal_edges=" << persist.wal_edges
       << " wal_bytes=" << persist.wal_bytes
       << " wal_segments=" << persist.wal_segments
       << " fsyncs=" << persist.wal_fsyncs
       << " snapshots=" << persist.snapshots_written
       << " snapshot_failures=" << persist.snapshot_failures
       << " last_snapshot_wal_seq=" << persist.last_snapshot_wal_seq
       << " recovered(edges=" << persist.recovered_window_edges
       << ",sessions=" << persist.recovered_sessions
       << ",subs=" << persist.recovered_subscriptions
       << ",replayed=" << persist.replayed_edges << ")\n";
  }
  for (const ShardLoadSnapshot& sh : shards) {
    os << "shard " << sh.shard << " [" << sh.sharding << "]"
       << ": retained_edges=" << sh.retained_edges
       << " retained_vertices=" << sh.retained_vertices
       << " evicted=" << sh.evicted_edges
       << " processed=" << sh.edges_processed
       << " completions=" << sh.completions
       << " live_partials=" << sh.live_partial_matches
       << " forwarded=" << sh.matches_forwarded
       << " received=" << sh.matches_received << "\n";
  }
  for (const SessionStatsSnapshot& s : sessions) {
    os << "session " << s.session_id << " '" << s.name << "'"
       << (s.open ? "" : " (closed)") << ": live=" << s.live_queries
       << " submitted=" << s.submissions << " admitted=" << s.admitted
       << " rejected=" << s.rejected << " detached=" << s.detaches << "\n";
    for (const SubscriptionStatsSnapshot& sub : s.subscriptions) {
      os << "  sub " << sub.subscription_id << " query='" << sub.query_name
         << "' state=" << sub.state << " policy=" << sub.policy
         << " enqueued=" << sub.enqueued << " delivered=" << sub.delivered
         << " dropped=" << sub.dropped
         << " suppressed=" << sub.suppressed_while_paused
         << " depth=" << sub.queue_depth << "\n";
    }
  }
  return os.str();
}

}  // namespace streamworks
