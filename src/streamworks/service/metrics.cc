#include "streamworks/service/metrics.h"

#include <sstream>

namespace streamworks {

std::string ServiceStatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "service: sessions=" << sessions_opened
     << " submissions=" << submissions << " admitted=" << admitted
     << " rejected(quota=" << rejected_session_quota
     << ",budget=" << rejected_partial_budget << ",other=" << rejected_other
     << ")"
     << " pauses=" << pauses << " resumes=" << resumes
     << " detaches=" << detaches << " reclaimed=" << reclaimed
     << " reclaimed_aged=" << reclaimed_aged
     << " edges_fed=" << edges_fed << "\n";
  os << "matches: enqueued=" << matches_enqueued
     << " delivered=" << matches_delivered << " dropped=" << matches_dropped
     << " suppressed=" << matches_suppressed
     << " lag_p50_us=" << delivery_lag_p50_us
     << " lag_p99_us=" << delivery_lag_p99_us << "\n";
  if (frontend.enabled) {
    os << "frontend: accepted=" << frontend.connections_accepted
       << " refused=" << frontend.connections_refused
       << " closed=" << frontend.connections_closed
       << " lines=" << frontend.lines_executed
       << " frames=" << frontend.frames_executed
       << " batch_edges=" << frontend.batch_edges_in
       << " protocol_errors=" << frontend.protocol_errors
       << " events=" << frontend.events_pushed
       << " pump_flushes=" << frontend.pump_flushes
       << " http_requests=" << frontend.http_requests
       << " bytes_in=" << frontend.bytes_in
       << " bytes_out=" << frontend.bytes_out
       << " reclaimed=" << frontend.subscriptions_reclaimed << "\n";
    for (const IoLoopStatsSnapshot& l : frontend.io_loops) {
      os << "io_loop " << l.loop << ": connections=" << l.connections
         << " pump_flushes=" << l.pump_flushes << "\n";
    }
  }
  if (persist.enabled) {
    os << "persist: wal_seq=" << persist.wal_seq
       << " wal_records=" << persist.wal_records
       << " wal_edges=" << persist.wal_edges
       << " wal_bytes=" << persist.wal_bytes
       << " wal_segments=" << persist.wal_segments
       << " fsyncs=" << persist.wal_fsyncs
       << " snapshots=" << persist.snapshots_written
       << " snapshot_failures=" << persist.snapshot_failures
       << " last_snapshot_wal_seq=" << persist.last_snapshot_wal_seq
       << " recovered(edges=" << persist.recovered_window_edges
       << ",sessions=" << persist.recovered_sessions
       << ",subs=" << persist.recovered_subscriptions
       << ",replayed=" << persist.replayed_edges << ")\n";
  }
  for (const ShardLoadSnapshot& sh : shards) {
    os << "shard " << sh.shard << " [" << sh.sharding << "]"
       << ": retained_edges=" << sh.retained_edges
       << " retained_vertices=" << sh.retained_vertices
       << " evicted=" << sh.evicted_edges
       << " processed=" << sh.edges_processed
       << " completions=" << sh.completions
       << " live_partials=" << sh.live_partial_matches
       << " forwarded=" << sh.matches_forwarded
       << " received=" << sh.matches_received << "\n";
  }
  for (const SessionStatsSnapshot& s : sessions) {
    os << "session " << s.session_id << " '" << s.name << "'"
       << (s.open ? "" : " (closed)") << ": live=" << s.live_queries
       << " submitted=" << s.submissions << " admitted=" << s.admitted
       << " rejected=" << s.rejected << " detached=" << s.detaches << "\n";
    for (const SubscriptionStatsSnapshot& sub : s.subscriptions) {
      os << "  sub " << sub.subscription_id << " query='" << sub.query_name
         << "' state=" << sub.state << " policy=" << sub.policy
         << " enqueued=" << sub.enqueued << " delivered=" << sub.delivered
         << " dropped=" << sub.dropped
         << " suppressed=" << sub.suppressed_while_paused
         << " depth=" << sub.queue_depth << "\n";
    }
  }
  return os.str();
}

}  // namespace streamworks
