#include "streamworks/service/interpreter.h"

#include <sstream>

#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

/// Whitespace-splits a line into tokens (multiple separators collapse).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string(line)};
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

StatusOr<DecompositionStrategy> ParseStrategy(std::string_view name) {
  for (DecompositionStrategy s : kAllDecompositionStrategies) {
    if (DecompositionStrategyName(s) == name) return s;
  }
  return Status::InvalidArgument("unknown decomposition strategy: " +
                                 std::string(name));
}

}  // namespace

CommandInterpreter::CommandInterpreter(QueryService* service,
                                       Interner* interner, std::ostream* out)
    : service_(service), interner_(interner), out_(out) {}

Status CommandInterpreter::Emit(const std::string& line) {
  if (out_ != nullptr) *out_ << line << "\n";
  return OkStatus();
}

Status CommandInterpreter::ExecuteScript(std::string_view script) {
  for (std::string_view line : Split(script, '\n')) {
    SW_RETURN_IF_ERROR(ExecuteLine(line));
  }
  if (in_define_) {
    return Status::InvalidArgument("script ended inside DEFINE " +
                                   define_name_ + " (missing END)");
  }
  return OkStatus();
}

StatusOr<std::pair<int, int>> CommandInterpreter::ResolveSubscription(
    std::string_view session, std::string_view sub) const {
  auto session_it = session_ids_.find(std::string(session));
  if (session_it == session_ids_.end()) {
    return Status::NotFound("unknown session: " + std::string(session));
  }
  auto sub_it = subscription_ids_.find(
      {std::string(session), std::string(sub)});
  if (sub_it == subscription_ids_.end()) {
    return Status::NotFound("unknown subscription: " + std::string(session) +
                            "." + std::string(sub));
  }
  return std::make_pair(session_it->second, sub_it->second);
}

Status CommandInterpreter::ExecuteLine(std::string_view line) {
  ++line_number_;
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped[0] == '#') return OkStatus();

  std::vector<std::string> tokens = Tokenize(stripped);
  const std::string& verb = tokens[0];

  if (in_define_) {
    if (verb == "END") {
      in_define_ = false;
      auto parsed = ParseQueryText(define_body_, interner_);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number_) + ": DEFINE " +
            define_name_ + ": " + parsed.status().message());
      }
      definitions_.insert_or_assign(define_name_, std::move(parsed).value());
      ++commands_executed_;
      return Emit("OK define " + define_name_);
    }
    define_body_ += std::string(stripped);
    define_body_ += '\n';
    return OkStatus();
  }

  const auto error = [this](std::string_view msg) {
    return Status::InvalidArgument("line " + std::to_string(line_number_) +
                                   ": " + std::string(msg));
  };

  Status status = OkStatus();
  if (verb == "DEFINE") {
    if (tokens.size() != 2) return error("DEFINE takes one name");
    in_define_ = true;
    define_name_ = tokens[1];
    define_body_ = "query " + define_name_ + "\n";
    return OkStatus();  // counted when END closes the block
  } else if (verb == "SESSION") {
    status = HandleSession(tokens);
  } else if (verb == "SUBMIT") {
    status = HandleSubmit(tokens);
  } else if (verb == "PAUSE" || verb == "RESUME" || verb == "DETACH") {
    status = HandleLifecycle(verb, tokens);
  } else if (verb == "FEED") {
    status = HandleFeed(tokens);
  } else if (verb == "FLUSH") {
    service_->Flush();
    status = Emit("OK flush");
  } else if (verb == "POLL") {
    status = HandlePoll(tokens);
  } else if (verb == "STREAM" || verb == "UNSTREAM") {
    status = HandleStream(verb == "STREAM", tokens);
  } else if (verb == "STATS") {
    service_->Flush();
    if (out_ != nullptr) *out_ << service_->Snapshot().ToString();
    status = OkStatus();
  } else {
    return error("unknown command: " + verb);
  }
  if (!status.ok()) {
    return error(verb + ": " + status.message());
  }
  ++commands_executed_;
  return OkStatus();
}

Status CommandInterpreter::HandleSession(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) return Status::InvalidArgument("takes one name");
  SW_ASSIGN_OR_RETURN(const int id, service_->OpenSession(tokens[1]));
  session_ids_[tokens[1]] = id;
  return Emit("OK session " + tokens[1] + " id=" + std::to_string(id));
}

Status CommandInterpreter::HandleSubmit(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 4) {
    return Status::InvalidArgument(
        "usage: SUBMIT <session> <sub> <query> [WINDOW w] [CAP n] "
        "[POLICY p] [STRATEGY s]");
  }
  const std::string& session_name = tokens[1];
  const std::string& sub_name = tokens[2];
  const std::string& query_name = tokens[3];

  auto session_it = session_ids_.find(session_name);
  if (session_it == session_ids_.end()) {
    return Status::NotFound("unknown session: " + session_name);
  }
  // A sub name addresses lifecycle commands, so a live one must not be
  // silently replaced; the name frees once its subscription detaches
  // (the detach/re-submit flow).
  auto existing = subscription_ids_.find({session_name, sub_name});
  if (existing != subscription_ids_.end()) {
    auto state = service_->state(session_it->second, existing->second);
    if (state.ok() && *state != SubscriptionState::kDetached) {
      return Status::AlreadyExists("subscription name in use: " +
                                   session_name + "." + sub_name);
    }
  }
  auto def_it = definitions_.find(query_name);
  if (def_it == definitions_.end()) {
    return Status::NotFound("undefined query: " + query_name);
  }

  SubmitOptions options;
  options.window = def_it->second.window;  // DSL window, unless overridden
  for (size_t i = 4; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "WINDOW") {
      int64_t w = 0;
      if (!ParseInt64(value, &w) || w <= 0) {
        return Status::InvalidArgument("bad WINDOW: " + value);
      }
      options.window = w;
    } else if (key == "CAP") {
      uint64_t cap = 0;
      if (!ParseUint64(value, &cap) || cap == 0) {
        return Status::InvalidArgument("bad CAP: " + value);
      }
      options.queue_capacity = cap;
    } else if (key == "POLICY") {
      SW_ASSIGN_OR_RETURN(const OverflowPolicy policy,
                          ParseOverflowPolicy(value));
      options.policy = policy;
    } else if (key == "STRATEGY") {
      SW_ASSIGN_OR_RETURN(options.strategy, ParseStrategy(value));
    } else {
      return Status::InvalidArgument("unknown SUBMIT option: " + key);
    }
  }
  if ((tokens.size() - 4) % 2 != 0) {
    return Status::InvalidArgument("dangling SUBMIT option value");
  }

  auto submitted =
      service_->Submit(session_it->second, def_it->second.graph, options);
  if (!submitted.ok()) {
    if (submitted.status().code() == StatusCode::kResourceExhausted) {
      // Admission rejection is a scenario outcome scripts assert on, not a
      // malformed script.
      return Emit("REJECTED " + session_name + "." + sub_name + " " +
                  submitted.status().ToString());
    }
    return submitted.status();
  }
  subscription_ids_[{session_name, sub_name}] = submitted.value();
  if (submit_hook_) {
    submit_hook_(session_name, sub_name, session_it->second,
                 submitted.value(), options);
  }
  return Emit("OK submit " + session_name + "." + sub_name +
              " id=" + std::to_string(submitted.value()));
}

Status CommandInterpreter::HandleLifecycle(
    const std::string& verb, const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument("usage: " + verb + " <session> <sub>");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  if (verb == "PAUSE") {
    SW_RETURN_IF_ERROR(service_->Pause(ids.first, ids.second));
  } else if (verb == "RESUME") {
    SW_RETURN_IF_ERROR(service_->Resume(ids.first, ids.second));
  } else {
    // Detach after a flush so every edge fed before the DETACH line has
    // delivered its matches (script time is stream time).
    service_->Flush();
    SW_RETURN_IF_ERROR(service_->Detach(ids.first, ids.second));
  }
  return Emit("OK " + verb + " " + tokens[1] + "." + tokens[2]);
}

Status CommandInterpreter::HandleFeed(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 7) {
    return Status::InvalidArgument(
        "usage: FEED <src> <SrcLabel> <dst> <DstLabel> <edgeLabel> <ts>");
  }
  StreamEdge edge;
  if (!ParseUint64(tokens[1], &edge.src)) {
    return Status::InvalidArgument("bad src vertex id: " + tokens[1]);
  }
  edge.src_label = interner_->Intern(tokens[2]);
  if (!ParseUint64(tokens[3], &edge.dst)) {
    return Status::InvalidArgument("bad dst vertex id: " + tokens[3]);
  }
  edge.dst_label = interner_->Intern(tokens[4]);
  edge.edge_label = interner_->Intern(tokens[5]);
  if (!ParseInt64(tokens[6], &edge.ts)) {
    return Status::InvalidArgument("bad timestamp: " + tokens[6]);
  }
  // A malformed edge (time regression, label clash) is a stream property,
  // not a script error: the engine counts it and the stream continues.
  service_->Feed(edge).ok();
  return OkStatus();
}

Status CommandInterpreter::HandlePoll(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument("usage: POLL <session> <sub>");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  // Matches still in flight on backend workers belong to this poll.
  service_->Flush();
  ResultQueue* queue = service_->queue(ids.first, ids.second);
  if (queue == nullptr) return Status::NotFound("subscription has no queue");
  std::vector<CompleteMatch> matches;
  queue->Drain(&matches);
  for (const CompleteMatch& cm : matches) {
    Emit("MATCH " + tokens[1] + "." + tokens[2] + " completed_at=" +
         std::to_string(cm.completed_at) + " " + cm.match.ToString());
  }
  return Emit("POLLED " + tokens[1] + "." + tokens[2] +
              " n=" + std::to_string(matches.size()));
}

Status CommandInterpreter::HandleStream(
    bool enable, const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument(
        std::string("usage: ") + (enable ? "STREAM" : "UNSTREAM") +
        " <session> <sub>");
  }
  if (!stream_hook_) {
    return Status::Unimplemented(
        "this frontend has no push transport (STREAM needs the socket "
        "server)");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  SW_RETURN_IF_ERROR(
      stream_hook_(enable, tokens[1], tokens[2], ids.first, ids.second));
  return Emit(std::string("OK ") + (enable ? "stream " : "unstream ") +
              tokens[1] + "." + tokens[2]);
}

}  // namespace streamworks
