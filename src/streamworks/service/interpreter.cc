#include "streamworks/service/interpreter.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "streamworks/common/str_util.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

namespace {

/// Widest command in the grammar: SUBMIT with every option pair is 12
/// tokens. Anything longer is malformed by construction.
constexpr size_t kMaxCommandTokens = 16;

/// Whitespace-splits `line` into string_views over its bytes (multiple
/// separators collapse). Zero allocations — the FEED hot path runs through
/// here once per edge. Returns the token count, or SIZE_MAX when the line
/// has more than kMaxCommandTokens tokens.
size_t Tokenize(std::string_view line,
                std::array<std::string_view, kMaxCommandTokens>* out) {
  size_t count = 0;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (count == kMaxCommandTokens) return SIZE_MAX;
    (*out)[count++] = line.substr(start, i - start);
  }
  return count;
}

StatusOr<DecompositionStrategy> ParseStrategy(std::string_view name) {
  for (DecompositionStrategy s : kAllDecompositionStrategies) {
    if (DecompositionStrategyName(s) == name) return s;
  }
  return Status::InvalidArgument("unknown decomposition strategy: " +
                                 std::string(name));
}

}  // namespace

CommandInterpreter::CommandInterpreter(QueryService* service,
                                       Interner* interner, std::ostream* out)
    : service_(service), interner_(interner), out_(out) {}

Status CommandInterpreter::Emit(const std::string& line) {
  if (out_ != nullptr) *out_ << line << "\n";
  return OkStatus();
}

Status CommandInterpreter::ExecuteScript(std::string_view script) {
  for (std::string_view line : Split(script, '\n')) {
    SW_RETURN_IF_ERROR(ExecuteLine(line));
  }
  if (in_define_) {
    return Status::InvalidArgument("script ended inside DEFINE " +
                                   define_name_ + " (missing END)");
  }
  return OkStatus();
}

StatusOr<std::pair<int, int>> CommandInterpreter::ResolveSubscription(
    std::string_view session, std::string_view sub) const {
  auto session_it = session_ids_.find(session);
  if (session_it == session_ids_.end()) {
    return Status::NotFound("unknown session: " + std::string(session));
  }
  auto sub_it = subscription_ids_.find(std::make_pair(session, sub));
  if (sub_it == subscription_ids_.end()) {
    return Status::NotFound("unknown subscription: " + std::string(session) +
                            "." + std::string(sub));
  }
  return std::make_pair(session_it->second, sub_it->second);
}

Status CommandInterpreter::ExecuteLine(std::string_view line) {
  ++line_number_;
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped[0] == '#') return OkStatus();

  const auto error = [this](std::string_view msg) {
    return Status::InvalidArgument("line " + std::to_string(line_number_) +
                                   ": " + std::string(msg));
  };

  if (in_define_) {
    if (stripped == "END") {
      in_define_ = false;
      auto parsed = ParseQueryText(define_body_, interner_);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number_) + ": DEFINE " +
            define_name_ + ": " + parsed.status().message());
      }
      definitions_.insert_or_assign(define_name_, std::move(parsed).value());
      ++commands_executed_;
      return Emit("OK define " + define_name_);
    }
    define_body_ += std::string(stripped);
    define_body_ += '\n';
    return OkStatus();
  }

  std::array<std::string_view, kMaxCommandTokens> token_storage;
  const size_t num_tokens = Tokenize(stripped, &token_storage);
  if (num_tokens == SIZE_MAX) {
    return error("too many tokens (max " +
                 std::to_string(kMaxCommandTokens) + ")");
  }
  const Tokens tokens(token_storage.data(), num_tokens);
  const std::string_view verb = tokens[0];

  Status status = OkStatus();
  if (verb == "DEFINE") {
    if (tokens.size() != 2) return error("DEFINE takes one name");
    in_define_ = true;
    define_name_ = std::string(tokens[1]);
    define_body_ = "query " + define_name_ + "\n";
    return OkStatus();  // counted when END closes the block
  } else if (verb == "SESSION") {
    status = HandleSession(tokens);
  } else if (verb == "ATTACH") {
    status = HandleAttach(tokens);
  } else if (verb == "SNAPSHOT") {
    if (tokens.size() != 1) {
      return error("SNAPSHOT takes no arguments");
    }
    if (!snapshot_hook_) {
      return error(
          "SNAPSHOT: this deployment has no durability layer (run with a "
          "data dir)");
    }
    auto result = snapshot_hook_();
    status = result.ok() ? Emit("OK snapshot " + result.value())
                         : result.status();
  } else if (verb == "SUBMIT") {
    status = HandleSubmit(tokens);
  } else if (verb == "PAUSE" || verb == "RESUME" || verb == "DETACH") {
    status = HandleLifecycle(verb, tokens);
  } else if (verb == "FEED") {
    status = HandleFeed(tokens);
  } else if (verb == "FLUSH") {
    service_->Flush();
    status = Emit("OK flush");
  } else if (verb == "POLL") {
    status = HandlePoll(tokens);
  } else if (verb == "STREAM" || verb == "UNSTREAM") {
    status = HandleStream(verb == "STREAM", tokens);
  } else if (verb == "STATS") {
    const bool json = tokens.size() == 2 && tokens[1] == "JSON";
    if (tokens.size() > 2 || (tokens.size() == 2 && !json)) {
      return error("STATS takes no arguments, or JSON");
    }
    service_->Flush();
    if (out_ != nullptr) {
      if (json) {
        *out_ << RenderStatsJson(service_->Snapshot()) << "\n";
      } else {
        *out_ << service_->Snapshot().ToString();
      }
    }
    status = OkStatus();
  } else if (verb == "TRACE") {
    if (tokens.size() != 1) return error("TRACE takes no arguments");
    if (pipeline_ == nullptr) {
      return error(
          "TRACE: this deployment has no pipeline instrumentation");
    }
    const std::string text =
        FormatTraceText(*pipeline_, PipelineMetrics::NowMicros());
    if (out_ != nullptr) *out_ << text;
    const size_t entries =
        static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
    status = Emit("OK trace n=" + std::to_string(entries));
  } else {
    return error("unknown command: " + std::string(verb));
  }
  if (!status.ok()) {
    return error(std::string(verb) + ": " + status.message());
  }
  ++commands_executed_;
  return OkStatus();
}

Status CommandInterpreter::ExecuteBatch(const EdgeBatch& batch) {
  size_t rejected = 0;
  // Like text FEED, a malformed edge inside the batch is counted by the
  // backend and the stream continues; the status itself is not an error.
  service_->FeedBatch(batch, &rejected).ok();
  ++commands_executed_;
  ++batch_frames_;
  batch_edges_ += batch.size();
  return Emit("OK feedb " + std::to_string(batch.size() - rejected) + " " +
              std::to_string(rejected));
}

Status CommandInterpreter::HandleSession(Tokens tokens) {
  if (tokens.size() != 2) return Status::InvalidArgument("takes one name");
  const std::string name(tokens[1]);
  SW_ASSIGN_OR_RETURN(const int id, service_->OpenSession(name));
  session_ids_[name] = id;
  return Emit("OK session " + name + " id=" + std::to_string(id));
}

Status CommandInterpreter::HandleAttach(Tokens tokens) {
  if (tokens.size() != 2) return Status::InvalidArgument("takes one name");
  const std::string name(tokens[1]);
  SW_ASSIGN_OR_RETURN(const AttachedSession attached,
                      service_->AttachSession(name));
  session_ids_[name] = attached.session_id;
  std::string subs;
  for (const AttachedSubscription& sub : attached.subscriptions) {
    if (sub.tag.empty()) continue;  // anonymous: unreachable by name
    subscription_ids_[{name, sub.tag}] = sub.subscription_id;
    if (attach_hook_) {
      attach_hook_(name, sub.tag, attached.session_id,
                   sub.subscription_id);
    }
    if (!subs.empty()) subs += ',';
    subs += sub.tag;
    // The state rides along so a reconnecting tenant can see that e.g.
    // a restored kBlock subscription came back paused and needs RESUME.
    subs += ':';
    subs += SubscriptionStateName(sub.state);
  }
  return Emit("OK attach " + name +
              " id=" + std::to_string(attached.session_id) + " subs=" +
              (subs.empty() ? "-" : subs));
}

Status CommandInterpreter::HandleSubmit(Tokens tokens) {
  if (tokens.size() < 4) {
    return Status::InvalidArgument(
        "usage: SUBMIT <session> <sub> <query> [WINDOW w] [CAP n] "
        "[POLICY p] [STRATEGY s]");
  }
  const std::string_view session_name = tokens[1];
  const std::string_view sub_name = tokens[2];
  const std::string_view query_name = tokens[3];

  auto session_it = session_ids_.find(session_name);
  if (session_it == session_ids_.end()) {
    return Status::NotFound("unknown session: " + std::string(session_name));
  }
  // A sub name addresses lifecycle commands, so a live one must not be
  // silently replaced; the name frees once its subscription detaches
  // (the detach/re-submit flow).
  auto existing =
      subscription_ids_.find(std::make_pair(session_name, sub_name));
  if (existing != subscription_ids_.end()) {
    auto state = service_->state(session_it->second, existing->second);
    if (state.ok() && *state != SubscriptionState::kDetached) {
      return Status::AlreadyExists("subscription name in use: " +
                                   std::string(session_name) + "." +
                                   std::string(sub_name));
    }
  }
  auto def_it = definitions_.find(query_name);
  if (def_it == definitions_.end()) {
    return Status::NotFound("undefined query: " + std::string(query_name));
  }

  SubmitOptions options;
  options.window = def_it->second.window;  // DSL window, unless overridden
  // The sub name doubles as the durable tag, so a recovered session's
  // subscriptions come back addressable under the same names via ATTACH.
  options.tag = std::string(sub_name);
  for (size_t i = 4; i + 1 < tokens.size(); i += 2) {
    const std::string_view key = tokens[i];
    const std::string_view value = tokens[i + 1];
    if (key == "WINDOW") {
      int64_t w = 0;
      if (!ParseInt64(value, &w) || w <= 0) {
        return Status::InvalidArgument("bad WINDOW: " + std::string(value));
      }
      options.window = w;
    } else if (key == "CAP") {
      uint64_t cap = 0;
      if (!ParseUint64(value, &cap) || cap == 0) {
        return Status::InvalidArgument("bad CAP: " + std::string(value));
      }
      options.queue_capacity = cap;
    } else if (key == "POLICY") {
      SW_ASSIGN_OR_RETURN(const OverflowPolicy policy,
                          ParseOverflowPolicy(value));
      options.policy = policy;
    } else if (key == "STRATEGY") {
      SW_ASSIGN_OR_RETURN(options.strategy, ParseStrategy(value));
    } else {
      return Status::InvalidArgument("unknown SUBMIT option: " +
                                     std::string(key));
    }
  }
  if ((tokens.size() - 4) % 2 != 0) {
    return Status::InvalidArgument("dangling SUBMIT option value");
  }

  auto submitted =
      service_->Submit(session_it->second, def_it->second.graph, options);
  if (!submitted.ok()) {
    if (submitted.status().code() == StatusCode::kResourceExhausted) {
      // Admission rejection is a scenario outcome scripts assert on, not a
      // malformed script.
      return Emit("REJECTED " + std::string(session_name) + "." +
                  std::string(sub_name) + " " +
                  submitted.status().ToString());
    }
    return submitted.status();
  }
  subscription_ids_[{std::string(session_name), std::string(sub_name)}] =
      submitted.value();
  if (submit_hook_) {
    submit_hook_(session_name, sub_name, session_it->second,
                 submitted.value(), options);
  }
  return Emit("OK submit " + std::string(session_name) + "." +
              std::string(sub_name) +
              " id=" + std::to_string(submitted.value()));
}

Status CommandInterpreter::HandleLifecycle(std::string_view verb,
                                           Tokens tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument("usage: " + std::string(verb) +
                                   " <session> <sub>");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  if (verb == "PAUSE") {
    SW_RETURN_IF_ERROR(service_->Pause(ids.first, ids.second));
  } else if (verb == "RESUME") {
    SW_RETURN_IF_ERROR(service_->Resume(ids.first, ids.second));
  } else {
    // Detach after a flush so every edge fed before the DETACH line has
    // delivered its matches (script time is stream time).
    service_->Flush();
    SW_RETURN_IF_ERROR(service_->Detach(ids.first, ids.second));
  }
  return Emit("OK " + std::string(verb) + " " + std::string(tokens[1]) +
              "." + std::string(tokens[2]));
}

Status CommandInterpreter::HandleFeed(Tokens tokens) {
  StreamEdge edge;
  SW_RETURN_IF_ERROR(
      ParseFeedFields(tokens.subspan(1), interner_, &edge));
  // A malformed edge (time regression, label clash) is a stream property,
  // not a script error: the engine counts it and the stream continues.
  service_->Feed(edge).ok();
  return OkStatus();
}

Status CommandInterpreter::HandlePoll(Tokens tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument("usage: POLL <session> <sub>");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  // Matches still in flight on backend workers belong to this poll.
  service_->Flush();
  ResultQueue* queue = service_->queue(ids.first, ids.second);
  if (queue == nullptr) return Status::NotFound("subscription has no queue");
  const std::string label =
      std::string(tokens[1]) + "." + std::string(tokens[2]);
  std::vector<CompleteMatch> matches;
  queue->Drain(&matches);
  for (const CompleteMatch& cm : matches) {
    // Pre-rendered external-id form (see CompleteMatch::rendered): the
    // same match prints the same bytes under every deployment mode.
    Emit("MATCH " + label + " completed_at=" +
         std::to_string(cm.completed_at) + " " + cm.rendered);
  }
  return Emit("POLLED " + label + " n=" + std::to_string(matches.size()));
}

Status CommandInterpreter::HandleStream(bool enable, Tokens tokens) {
  if (tokens.size() != 3) {
    return Status::InvalidArgument(
        std::string("usage: ") + (enable ? "STREAM" : "UNSTREAM") +
        " <session> <sub>");
  }
  if (!stream_hook_) {
    return Status::Unimplemented(
        "this frontend has no push transport (STREAM needs the socket "
        "server)");
  }
  SW_ASSIGN_OR_RETURN(const auto ids,
                      ResolveSubscription(tokens[1], tokens[2]));
  SW_RETURN_IF_ERROR(
      stream_hook_(enable, tokens[1], tokens[2], ids.first, ids.second));
  return Emit(std::string("OK ") + (enable ? "stream " : "unstream ") +
              std::string(tokens[1]) + "." + std::string(tokens[2]));
}

}  // namespace streamworks
