#include "streamworks/service/backend.h"

namespace streamworks {

StatusOr<int> SingleEngineBackend::Register(const QueryGraph& query,
                                            DecompositionStrategy strategy,
                                            Timestamp window,
                                            MatchCallback callback) {
  return engine_->RegisterQuery(query, strategy, window, std::move(callback));
}

Status SingleEngineBackend::Unregister(int query_id) {
  return engine_->UnregisterQuery(query_id);
}

StatusOr<QueryRuntimeInfo> SingleEngineBackend::Info(int query_id) {
  if (!engine_->has_query(query_id)) {
    return Status::NotFound("unknown or unregistered query id");
  }
  return engine_->query_info(query_id);
}

Status SingleEngineBackend::Feed(const StreamEdge& edge) {
  return engine_->ProcessEdge(edge);
}

Status SingleEngineBackend::FeedBatch(const EdgeBatch& batch,
                                      size_t* rejected_out) {
  // ProcessBatch skips malformed edges (counting them in edges_rejected);
  // the before/after delta is this batch's rejection count, since the
  // engine is single-threaded.
  const uint64_t before = engine_->metrics().edges_rejected;
  const Status status = engine_->ProcessBatch(batch);
  if (rejected_out != nullptr) {
    *rejected_out =
        static_cast<size_t>(engine_->metrics().edges_rejected - before);
  }
  return status;
}

StatusOr<WindowSnapshot> SingleEngineBackend::ExportWindow() {
  return engine_->ExportWindow();
}

Status SingleEngineBackend::RestoreWindow(const WindowSnapshot& snapshot) {
  for (const PersistedEdge& pe : snapshot.edges) {
    SW_RETURN_IF_ERROR(engine_->RestoreWindowEdge(pe.edge, pe.id));
  }
  engine_->FinishWindowRestore(snapshot.next_edge_id, snapshot.watermark);
  return OkStatus();
}

StatusOr<int> ParallelGroupBackend::Register(const QueryGraph& query,
                                             DecompositionStrategy strategy,
                                             Timestamp window,
                                             MatchCallback callback) {
  return group_->RegisterQuery(query, strategy, window, std::move(callback));
}

Status ParallelGroupBackend::Unregister(int query_id) {
  return group_->UnregisterQuery(query_id);
}

StatusOr<QueryRuntimeInfo> ParallelGroupBackend::Info(int query_id) {
  return group_->query_info(query_id);
}

Status ParallelGroupBackend::Feed(const StreamEdge& edge) {
  group_->ProcessEdge(edge);
  return OkStatus();
}

Status ParallelGroupBackend::FeedBatch(const EdgeBatch& batch,
                                       size_t* rejected_out) {
  // Ingestion is asynchronous: rejections surface in aggregate shard
  // counters only, never per batch.
  if (rejected_out != nullptr) *rejected_out = 0;
  group_->ProcessBatch(batch);
  return OkStatus();
}

std::vector<ShardLoadSnapshot> ParallelGroupBackend::ShardLoads() {
  const std::string sharding =
      (group_->mode() == ShardingMode::kPartitionedData
           ? "partitioned/" + group_->partitioner().name()
           : "broadcast");
  std::vector<ShardLoadSnapshot> out;
  for (const ShardStatsSnapshot& s : group_->ShardStats()) {
    ShardLoadSnapshot load;
    load.shard = s.shard;
    load.sharding = sharding;
    load.retained_edges = s.retained_edges;
    load.retained_vertices = s.retained_vertices;
    load.evicted_edges = s.evicted_edges;
    load.edges_processed = s.edges_processed;
    load.completions = s.completions;
    load.live_partial_matches = s.live_partial_matches;
    load.matches_forwarded = s.exchange.total_sent();
    load.matches_received = s.exchange.total_received();
    out.push_back(std::move(load));
  }
  return out;
}

}  // namespace streamworks
