#include "streamworks/match/backtrack.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

std::vector<QueryEdgeId> ConnectedEdgeOrder(const QueryGraph& query,
                                            Bitset64 edge_set,
                                            QueryEdgeId first) {
  SW_DCHECK(edge_set.Contains(first));
  std::vector<QueryEdgeId> order;
  order.reserve(edge_set.Count());
  order.push_back(first);
  Bitset64 placed_vertices =
      query.VerticesOfEdges(Bitset64::Single(first));
  Bitset64 remaining = edge_set - Bitset64::Single(first);
  while (!remaining.Empty()) {
    // Prefer an edge with both endpoints placed (its candidate check is a
    // cheap existence test); otherwise any edge touching the frontier.
    int chosen = -1;
    for (int e : remaining) {
      const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
      const bool src_in = placed_vertices.Contains(qe.src);
      const bool dst_in = placed_vertices.Contains(qe.dst);
      if (src_in && dst_in) {
        chosen = e;
        break;
      }
      if (chosen < 0 && (src_in || dst_in)) chosen = e;
    }
    SW_CHECK_GE(chosen, 0) << "ConnectedEdgeOrder on a disconnected set";
    const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(chosen));
    placed_vertices.Add(qe.src);
    placed_vertices.Add(qe.dst);
    remaining.Remove(chosen);
    order.push_back(static_cast<QueryEdgeId>(chosen));
  }
  return order;
}

bool EdgeLabelsMatch(const DynamicGraph& graph, const QueryGraph& query,
                     QueryEdgeId qe, const EdgeRecord& record) {
  const QueryEdge& qedge = query.edge(qe);
  return record.label == qedge.label &&
         graph.vertex_label(record.src) == query.vertex_label(qedge.src) &&
         graph.vertex_label(record.dst) == query.vertex_label(qedge.dst);
}

bool TryBindEdge(const DynamicGraph& graph, const QueryGraph& query,
                 QueryEdgeId qe, EdgeId de, const EdgeRecord& record,
                 Timestamp window, Match* partial, BindUndo* undo) {
  const QueryEdge& qedge = query.edge(qe);
  if (!EdgeLabelsMatch(graph, query, qe, record)) return false;
  if (partial->UsesDataEdge(de)) return false;
  if (!partial->FitsWindowWith(record.ts, window)) return false;
  if (qedge.src == qedge.dst && record.src != record.dst) return false;

  bool bind_src = false;
  if (partial->HasVertex(qedge.src)) {
    if (partial->vertex(qedge.src) != record.src) return false;
  } else {
    if (partial->UsesDataVertex(record.src)) return false;
    bind_src = true;
  }

  bool bind_dst = false;
  if (partial->HasVertex(qedge.dst)) {
    if (partial->vertex(qedge.dst) != record.dst) return false;
  } else if (qedge.dst != qedge.src) {
    if (partial->UsesDataVertex(record.dst)) return false;
    // Two distinct unbound query vertices must not land on one data vertex.
    if (bind_src && record.dst == record.src) return false;
    bind_dst = true;
  }

  if (bind_src) partial->BindVertex(qedge.src, record.src);
  if (bind_dst) partial->BindVertex(qedge.dst, record.dst);
  partial->BindEdge(qe, de, record.ts);
  undo->bound_src = bind_src;
  undo->bound_dst = bind_dst;
  return true;
}

void UndoBindEdge(const QueryGraph& query, QueryEdgeId qe, BindUndo undo,
                  Match* partial) {
  const QueryEdge& qedge = query.edge(qe);
  partial->UnbindEdge(qe);
  if (undo.bound_src) partial->UnbindVertex(qedge.src);
  if (undo.bound_dst) partial->UnbindVertex(qedge.dst);
}

namespace {

/// Lowest timestamp a candidate may carry given the limits and the span
/// already committed in `partial`.
Timestamp CandidateMinTs(const BacktrackLimits& limits,
                         const Match& partial) {
  Timestamp lo = limits.min_ts;
  if (limits.window != kMaxTimestamp && !partial.bound_edges().Empty()) {
    lo = std::max(lo, partial.max_ts() - limits.window + 1);
  }
  return lo;
}

/// Highest timestamp a candidate may carry.
Timestamp CandidateMaxTs(const BacktrackLimits& limits,
                         const Match& partial) {
  if (limits.window == kMaxTimestamp || partial.bound_edges().Empty()) {
    return kMaxTimestamp;
  }
  const Timestamp min_ts = partial.min_ts();
  if (min_ts > kMaxTimestamp - limits.window) return kMaxTimestamp;
  return min_ts + limits.window - 1;
}

/// First index in the ts-ascending adjacency span with ts >= lo.
size_t LowerBoundByTs(std::span<const AdjEntry> adj, Timestamp lo) {
  return static_cast<size_t>(
      std::lower_bound(adj.begin(), adj.end(), lo,
                       [](const AdjEntry& e, Timestamp t) {
                         return e.ts < t;
                       }) -
      adj.begin());
}

/// Statically-inlined "always local" gate/defer for the classic path, so
/// the shared template body compiles down to exactly the old ExtendMatch.
struct AlwaysLocalGate {
  bool operator()(VertexId) const { return true; }
};
struct NeverDefer {
  void operator()(const Match&, size_t) const {}
};

/// One enumeration body for both the classic and the sharded search. The
/// scan-side choice, candidate bounds, and filters MUST be identical in
/// both modes — a deferred branch resumes at this exact step on another
/// shard, and exactly-once across shards depends on every shard agreeing
/// on what the step would have enumerated — so they are shared by
/// construction rather than kept in sync by hand.
template <typename Gate, typename Defer>
bool ExtendMatchImpl(const DynamicGraph& graph, const QueryGraph& query,
                     const std::vector<QueryEdgeId>& order, size_t from,
                     const BacktrackLimits& limits, Match* partial,
                     const Gate& gate, const Defer& defer,
                     const MatchSink& emit) {
  if (from == order.size()) return emit(*partial);

  const QueryEdgeId qe = order[from];
  const QueryEdge& qedge = query.edge(qe);
  const bool src_bound = partial->HasVertex(qedge.src);
  const bool dst_bound = partial->HasVertex(qedge.dst);
  SW_DCHECK(src_bound || dst_bound)
      << "expansion order reached an edge with no bound endpoint";

  // Enumerate from the bound endpoint's adjacency; when both are bound,
  // still scan one side — TryBindEdge enforces the other endpoint.
  const VertexId scan_vertex = src_bound ? partial->vertex(qedge.src)
                                         : partial->vertex(qedge.dst);
  if (!gate(scan_vertex)) {
    defer(*partial, from);
    return true;
  }

  const Timestamp lo = CandidateMinTs(limits, *partial);
  const Timestamp hi = CandidateMaxTs(limits, *partial);
  std::span<const AdjEntry> adj =
      src_bound ? graph.OutEdges(scan_vertex) : graph.InEdges(scan_vertex);

  for (size_t i = LowerBoundByTs(adj, lo); i < adj.size(); ++i) {
    const AdjEntry& entry = adj[i];
    if (entry.ts > hi) break;  // ts-sorted: nothing later can fit
    if (entry.label != qedge.label) continue;
    if (entry.edge >= limits.max_edge_id) continue;
    const EdgeRecord record =
        src_bound
            ? EdgeRecord{partial->vertex(qedge.src), entry.other,
                         entry.label, entry.ts}
            : EdgeRecord{entry.other, partial->vertex(qedge.dst),
                         entry.label, entry.ts};
    BindUndo undo;
    if (!TryBindEdge(graph, query, qe, entry.edge, record, limits.window,
                     partial, &undo)) {
      continue;
    }
    const bool keep_going = ExtendMatchImpl(graph, query, order, from + 1,
                                            limits, partial, gate, defer,
                                            emit);
    UndoBindEdge(query, qe, undo, partial);
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

bool ExtendMatch(const DynamicGraph& graph, const QueryGraph& query,
                 const std::vector<QueryEdgeId>& order, size_t from,
                 const BacktrackLimits& limits, Match* partial,
                 const MatchSink& emit) {
  return ExtendMatchImpl(graph, query, order, from, limits, partial,
                         AlwaysLocalGate{}, NeverDefer{}, emit);
}

bool ExtendMatchGated(const DynamicGraph& graph, const QueryGraph& query,
                      const std::vector<QueryEdgeId>& order, size_t from,
                      const BacktrackLimits& limits, Match* partial,
                      const ScanGate& gate, const DeferSink& defer,
                      const MatchSink& emit) {
  return ExtendMatchImpl(graph, query, order, from, limits, partial, gate,
                         defer, emit);
}

}  // namespace streamworks
