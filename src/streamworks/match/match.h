#ifndef STREAMWORKS_MATCH_MATCH_H_
#define STREAMWORKS_MATCH_MATCH_H_

#include <string>
#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"

namespace streamworks {

/// A (partial) match: an injective mapping from query vertices to data
/// vertices and from query edges to data edges (paper §2.1; Property 3's
/// match elements). A Match is sized for its whole query graph; the subset
/// of bound edges identifies which SJ-Tree node it belongs to.
///
/// Matches are small value types (queries have <= 64 vertices/edges, and in
/// practice < 10) and are copied freely during backtracking and joins.
class Match {
 public:
  Match() = default;

  /// An empty match shaped for `query`: nothing bound.
  explicit Match(const QueryGraph& query)
      : vertex_map_(query.num_vertices(), kInvalidVertexId),
        edge_map_(query.num_edges(), kInvalidEdgeId) {}

  // --- Vertex bindings ----------------------------------------------------
  bool HasVertex(QueryVertexId qv) const {
    return vertex_map_[qv] != kInvalidVertexId;
  }
  VertexId vertex(QueryVertexId qv) const { return vertex_map_[qv]; }

  /// Binds query vertex `qv` to data vertex `dv`. Rebinding to a different
  /// data vertex is a programming error (checked).
  void BindVertex(QueryVertexId qv, VertexId dv);
  /// Removes the binding of `qv` (backtracking).
  void UnbindVertex(QueryVertexId qv);

  /// True if some query vertex is already mapped to data vertex `dv`.
  bool UsesDataVertex(VertexId dv) const;

  // --- Edge bindings -------------------------------------------------------
  bool HasEdge(QueryEdgeId qe) const {
    return edge_map_[qe] != kInvalidEdgeId;
  }
  EdgeId edge(QueryEdgeId qe) const { return edge_map_[qe]; }

  /// Binds query edge `qe` to data edge `de` with timestamp `ts`, updating
  /// the match's time span. Does not bind endpoints; callers bind vertices
  /// explicitly (they may already be bound).
  void BindEdge(QueryEdgeId qe, EdgeId de, Timestamp ts);
  /// Removes the binding of `qe`. The time span is recomputed from the
  /// remaining bound edges' `ts` values in `ts_of_edge_`.
  void UnbindEdge(QueryEdgeId qe);

  bool UsesDataEdge(EdgeId de) const;

  // --- Shape and time span --------------------------------------------------
  Bitset64 bound_edges() const { return bound_edges_; }
  Bitset64 bound_vertices() const { return bound_vertices_; }
  int num_bound_edges() const { return bound_edges_.Count(); }

  /// Timestamp bound alongside edge `qe` (checked: `qe` must be bound).
  Timestamp edge_ts(QueryEdgeId qe) const;

  /// Earliest / latest timestamp over bound edges. Undefined (checked) when
  /// no edge is bound.
  Timestamp min_ts() const;
  Timestamp max_ts() const;
  /// max_ts - min_ts; 0 when a single edge is bound.
  Timestamp Span() const { return max_ts() - min_ts(); }

  /// True if binding an edge with timestamp `ts` keeps the span < `window`.
  bool FitsWindowWith(Timestamp ts, Timestamp window) const;

  // --- Identity ---------------------------------------------------------------
  /// Order-independent 64-bit signature of the complete mapping (vertex and
  /// edge assignments). Equal mappings always collide; unequal mappings
  /// collide with probability ~2^-64. Used for oracle set comparison.
  uint64_t MappingSignature() const;

  /// Signature of just the set of bound data edges (ignores which query
  /// edge maps where) — identifies the data subgraph for deduplication of
  /// automorphic images.
  uint64_t EdgeSetSignature() const;

  /// Like MappingSignature, but vertices hash by their *external* ids
  /// (resolved through `graph`) instead of graph-local dense ids. Internal
  /// vertex ids are an artifact of per-graph ingestion order, so this is
  /// the signature that stays comparable across deployment modes — e.g. a
  /// single engine vs. the shards of a vertex-partitioned group, which
  /// ingest different edge subsets and number vertices differently.
  uint64_t ExternalMappingSignature(const DynamicGraph& graph) const;

  /// Largest bound data edge id — the edge whose arrival completed this
  /// match (edge ids are arrival sequence numbers). Undefined (checked)
  /// when no edge is bound.
  EdgeId MaxDataEdgeId() const;

  /// Exact equality of the two mappings (not just signatures).
  friend bool operator==(const Match& a, const Match& b) {
    return a.vertex_map_ == b.vertex_map_ && a.edge_map_ == b.edge_map_;
  }

  /// Merges two matches of the same query with disjoint bound edge sets and
  /// consistent vertex bindings (the SJ-Tree join, Property 2). The caller
  /// must have validated compatibility (JoinCompatible below).
  static Match Union(const Match& a, const Match& b);

  /// Debug rendering: "{v0->17, v1->4 | e0->#123@5, ...} span=..".
  std::string ToString() const;

  /// Rendering in deployment-invariant ids: vertices by external id
  /// (resolved through `graph`, the delivering engine's), edges by their
  /// global ingest id. Same shape as ToString, but two deployments that
  /// found the same match render the same bytes — ToString's internal
  /// vertex ids are per-engine ingestion-order artifacts, so its output
  /// differs between a single engine and the shards of a partitioned
  /// group (or cluster) even for identical matches. Served EVENT/POLL
  /// lines use this form for exactly that reason.
  std::string ToExternalString(const DynamicGraph& graph) const;

 private:
  std::vector<VertexId> vertex_map_;
  std::vector<EdgeId> edge_map_;
  std::vector<Timestamp> ts_of_edge_;  // parallel to edge_map_, lazily sized
  Bitset64 bound_vertices_;
  Bitset64 bound_edges_;
  Timestamp min_ts_ = kMaxTimestamp;
  Timestamp max_ts_ = kMinTimestamp;
};

/// Validates that `a` and `b` can be joined into one consistent mapping:
/// disjoint bound query-edge sets, agreeing data vertices on shared query
/// vertices, global vertex injectivity (distinct query vertices never share
/// a data vertex), edge injectivity (no data edge bound twice), and combined
/// time span < `window`.
bool JoinCompatible(const Match& a, const Match& b, Timestamp window);

}  // namespace streamworks

#endif  // STREAMWORKS_MATCH_MATCH_H_
