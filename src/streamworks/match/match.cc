#include "streamworks/match/match.h"

#include <algorithm>
#include <sstream>

#include "streamworks/common/hash.h"
#include "streamworks/common/logging.h"

namespace streamworks {

void Match::BindVertex(QueryVertexId qv, VertexId dv) {
  SW_DCHECK(vertex_map_[qv] == kInvalidVertexId || vertex_map_[qv] == dv)
      << "rebinding query vertex to a different data vertex";
  vertex_map_[qv] = dv;
  bound_vertices_.Add(qv);
}

void Match::UnbindVertex(QueryVertexId qv) {
  vertex_map_[qv] = kInvalidVertexId;
  bound_vertices_.Remove(qv);
}

bool Match::UsesDataVertex(VertexId dv) const {
  for (int qv : bound_vertices_) {
    if (vertex_map_[qv] == dv) return true;
  }
  return false;
}

void Match::BindEdge(QueryEdgeId qe, EdgeId de, Timestamp ts) {
  SW_DCHECK(!HasEdge(qe)) << "query edge already bound";
  if (ts_of_edge_.size() < edge_map_.size()) {
    ts_of_edge_.resize(edge_map_.size(), 0);
  }
  edge_map_[qe] = de;
  ts_of_edge_[qe] = ts;
  bound_edges_.Add(qe);
  min_ts_ = std::min(min_ts_, ts);
  max_ts_ = std::max(max_ts_, ts);
}

void Match::UnbindEdge(QueryEdgeId qe) {
  SW_DCHECK(HasEdge(qe));
  edge_map_[qe] = kInvalidEdgeId;
  bound_edges_.Remove(qe);
  min_ts_ = kMaxTimestamp;
  max_ts_ = kMinTimestamp;
  for (int e : bound_edges_) {
    min_ts_ = std::min(min_ts_, ts_of_edge_[e]);
    max_ts_ = std::max(max_ts_, ts_of_edge_[e]);
  }
}

bool Match::UsesDataEdge(EdgeId de) const {
  for (int qe : bound_edges_) {
    if (edge_map_[qe] == de) return true;
  }
  return false;
}

Timestamp Match::edge_ts(QueryEdgeId qe) const {
  SW_DCHECK(HasEdge(qe));
  return ts_of_edge_[qe];
}

Timestamp Match::min_ts() const {
  SW_DCHECK(!bound_edges_.Empty());
  return min_ts_;
}

Timestamp Match::max_ts() const {
  SW_DCHECK(!bound_edges_.Empty());
  return max_ts_;
}

bool Match::FitsWindowWith(Timestamp ts, Timestamp window) const {
  if (bound_edges_.Empty()) return true;
  const Timestamp lo = std::min(min_ts_, ts);
  const Timestamp hi = std::max(max_ts_, ts);
  return hi - lo < window;
}

EdgeId Match::MaxDataEdgeId() const {
  SW_DCHECK(!bound_edges_.Empty());
  EdgeId max_id = 0;
  for (int qe : bound_edges_) {
    max_id = std::max(max_id, edge_map_[qe]);
  }
  return max_id;
}

uint64_t Match::MappingSignature() const {
  // Ordered fold over ascending query ids: equal mappings hash equal.
  uint64_t h = 0x5741d8a3c5u;
  for (int qv : bound_vertices_) {
    h = HashCombine(h, (static_cast<uint64_t>(qv) << 32) ^ vertex_map_[qv]);
  }
  for (int qe : bound_edges_) {
    h = HashCombine(h, (static_cast<uint64_t>(qe + 64) << 32) ^
                           Mix64(edge_map_[qe]));
  }
  return h;
}

uint64_t Match::ExternalMappingSignature(const DynamicGraph& graph) const {
  uint64_t h = 0x5741d8a3c5u;
  for (int qv : bound_vertices_) {
    h = HashCombine(h, (static_cast<uint64_t>(qv) << 32) ^
                           Mix64(graph.external_id(vertex_map_[qv])));
  }
  for (int qe : bound_edges_) {
    h = HashCombine(h, (static_cast<uint64_t>(qe + 64) << 32) ^
                           Mix64(edge_map_[qe]));
  }
  return h;
}

uint64_t Match::EdgeSetSignature() const {
  // XOR of per-edge hashes: order-independent over the data edge *set*.
  uint64_t h = Mix64(static_cast<uint64_t>(bound_edges_.Count()) + 1);
  for (int qe : bound_edges_) {
    h ^= Mix64(edge_map_[qe] + 0x9e37u);
  }
  return h;
}

Match Match::Union(const Match& a, const Match& b) {
  SW_DCHECK(!a.bound_edges().Intersects(b.bound_edges()))
      << "joining matches with overlapping query edges";
  Match out = a;
  for (int qv : b.bound_vertices_) {
    out.BindVertex(static_cast<QueryVertexId>(qv), b.vertex_map_[qv]);
  }
  for (int qe : b.bound_edges_) {
    out.BindEdge(static_cast<QueryEdgeId>(qe), b.edge_map_[qe],
                 b.ts_of_edge_[qe]);
  }
  return out;
}

std::string Match::ToString() const {
  // Direct string building, not ostringstream: every streamed EVENT line
  // renders a match, so this runs once per delivered match on the pump's
  // hot path.
  std::string out;
  out.reserve(64);
  out += '{';
  bool first = true;
  for (int qv : bound_vertices_) {
    if (!first) out += ", ";
    first = false;
    out += 'v';
    out += std::to_string(qv);
    out += "->";
    out += std::to_string(vertex_map_[qv]);
  }
  out += " | ";
  first = true;
  for (int qe : bound_edges_) {
    if (!first) out += ", ";
    first = false;
    out += 'e';
    out += std::to_string(qe);
    out += "->#";
    out += std::to_string(edge_map_[qe]);
    out += '@';
    out += std::to_string(ts_of_edge_[qe]);
  }
  out += '}';
  if (!bound_edges_.Empty()) {
    out += " span=";
    out += std::to_string(Span());
  }
  return out;
}

std::string Match::ToExternalString(const DynamicGraph& graph) const {
  std::string out;
  out.reserve(64);
  out += '{';
  bool first = true;
  for (int qv : bound_vertices_) {
    if (!first) out += ", ";
    first = false;
    out += 'v';
    out += std::to_string(qv);
    out += "->";
    out += std::to_string(graph.external_id(vertex_map_[qv]));
  }
  out += " | ";
  first = true;
  for (int qe : bound_edges_) {
    if (!first) out += ", ";
    first = false;
    out += 'e';
    out += std::to_string(qe);
    out += "->#";
    out += std::to_string(edge_map_[qe]);
    out += '@';
    out += std::to_string(ts_of_edge_[qe]);
  }
  out += '}';
  if (!bound_edges_.Empty()) {
    out += " span=";
    out += std::to_string(Span());
  }
  return out;
}

bool JoinCompatible(const Match& a, const Match& b, Timestamp window) {
  if (a.bound_edges().Intersects(b.bound_edges())) return false;
  if (a.bound_edges().Empty() || b.bound_edges().Empty()) return false;

  // Combined time span must respect the strict window.
  const Timestamp lo = std::min(a.min_ts(), b.min_ts());
  const Timestamp hi = std::max(a.max_ts(), b.max_ts());
  if (hi - lo >= window) return false;

  // Shared query vertices must agree; exclusive ones must stay injective.
  const Bitset64 shared = a.bound_vertices() & b.bound_vertices();
  for (int qv : shared) {
    if (a.vertex(static_cast<QueryVertexId>(qv)) !=
        b.vertex(static_cast<QueryVertexId>(qv))) {
      return false;
    }
  }
  for (int qv : b.bound_vertices() - shared) {
    if (a.UsesDataVertex(b.vertex(static_cast<QueryVertexId>(qv)))) {
      return false;
    }
  }

  // No data edge may serve two query edges (parallel data edges are
  // distinct, but the same data edge must not be reused).
  for (int qe : b.bound_edges()) {
    if (a.UsesDataEdge(b.edge(static_cast<QueryEdgeId>(qe)))) return false;
  }
  return true;
}

}  // namespace streamworks
