#include "streamworks/match/subgraph_iso.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

namespace {

/// Binary search over the ts-ascending edge store, by stored *index* (ids
/// may have gaps on a vertex-partitioned shard graph): smallest index
/// whose record has ts >= min_ts.
size_t FirstStoredIndexWithTsAtLeast(const DynamicGraph& graph,
                                     Timestamp min_ts) {
  size_t lo = 0;
  size_t hi = graph.num_stored_edges();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (graph.edge_record(graph.stored_edge_id(mid)).ts < min_ts) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void ForEachMatch(const DynamicGraph& graph, const QueryGraph& query,
                  const IsoOptions& options, const MatchSink& sink) {
  SW_CHECK_GT(query.num_edges(), 0);
  if (graph.num_stored_edges() == 0) return;

  const std::vector<QueryEdgeId> order =
      ConnectedEdgeOrder(query, query.AllEdges(), /*first=*/0);
  BacktrackLimits limits;
  limits.window = options.window;
  limits.min_ts = options.min_ts;
  limits.max_edge_id = options.max_edge_id;

  size_t emitted = 0;
  const MatchSink counting_sink = [&](const Match& m) {
    if (!sink(m)) return false;
    return ++emitted < options.max_matches;
  };

  // Anchor the first query edge on every eligible stored edge; ExtendMatch
  // enumerates the rest. Each mapping is produced exactly once because the
  // anchor slot is a fixed query edge.
  const size_t begin = options.min_ts == kMinTimestamp
                           ? 0
                           : FirstStoredIndexWithTsAtLeast(graph,
                                                           options.min_ts);
  Match partial(query);
  for (size_t i = begin; i < graph.num_stored_edges(); ++i) {
    const EdgeId anchor = graph.stored_edge_id(i);
    // Stored ids ascend, so the id bound is a clean break.
    if (options.max_edge_id != kInvalidEdgeId &&
        anchor >= options.max_edge_id) {
      break;
    }
    const EdgeRecord& record = graph.edge_record(anchor);
    BindUndo undo;
    if (!TryBindEdge(graph, query, order[0], anchor, record, options.window,
                     &partial, &undo)) {
      continue;
    }
    const bool keep_going =
        ExtendMatch(graph, query, order, 1, limits, &partial, counting_sink);
    UndoBindEdge(query, order[0], undo, &partial);
    if (!keep_going) return;
  }
}

std::vector<Match> FindAllMatches(const DynamicGraph& graph,
                                  const QueryGraph& query,
                                  const IsoOptions& options) {
  std::vector<Match> out;
  ForEachMatch(graph, query, options, [&](const Match& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

}  // namespace streamworks
