#include "streamworks/match/subgraph_iso.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

namespace {

/// Binary search over the id-contiguous, ts-ascending edge store: smallest
/// stored id whose record has ts >= min_ts.
EdgeId FirstStoredEdgeWithTsAtLeast(const DynamicGraph& graph,
                                    Timestamp min_ts) {
  EdgeId lo = graph.first_stored_edge_id();
  EdgeId hi = graph.next_edge_id();
  while (lo < hi) {
    const EdgeId mid = lo + (hi - lo) / 2;
    if (graph.edge_record(mid).ts < min_ts) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void ForEachMatch(const DynamicGraph& graph, const QueryGraph& query,
                  const IsoOptions& options, const MatchSink& sink) {
  SW_CHECK_GT(query.num_edges(), 0);
  if (graph.num_stored_edges() == 0) return;

  const std::vector<QueryEdgeId> order =
      ConnectedEdgeOrder(query, query.AllEdges(), /*first=*/0);
  BacktrackLimits limits;
  limits.window = options.window;
  limits.min_ts = options.min_ts;
  limits.max_edge_id = options.max_edge_id;

  size_t emitted = 0;
  const MatchSink counting_sink = [&](const Match& m) {
    if (!sink(m)) return false;
    return ++emitted < options.max_matches;
  };

  // Anchor the first query edge on every eligible stored edge; ExtendMatch
  // enumerates the rest. Each mapping is produced exactly once because the
  // anchor slot is a fixed query edge.
  const EdgeId begin = options.min_ts == kMinTimestamp
                           ? graph.first_stored_edge_id()
                           : FirstStoredEdgeWithTsAtLeast(graph,
                                                          options.min_ts);
  const EdgeId end = options.max_edge_id == kInvalidEdgeId
                         ? graph.next_edge_id()
                         : std::min(graph.next_edge_id(),
                                    options.max_edge_id);
  Match partial(query);
  for (EdgeId anchor = begin; anchor < end; ++anchor) {
    const EdgeRecord& record = graph.edge_record(anchor);
    BindUndo undo;
    if (!TryBindEdge(graph, query, order[0], anchor, record, options.window,
                     &partial, &undo)) {
      continue;
    }
    const bool keep_going =
        ExtendMatch(graph, query, order, 1, limits, &partial, counting_sink);
    UndoBindEdge(query, order[0], undo, &partial);
    if (!keep_going) return;
  }
}

std::vector<Match> FindAllMatches(const DynamicGraph& graph,
                                  const QueryGraph& query,
                                  const IsoOptions& options) {
  std::vector<Match> out;
  ForEachMatch(graph, query, options, [&](const Match& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

}  // namespace streamworks
