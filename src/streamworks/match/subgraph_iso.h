#ifndef STREAMWORKS_MATCH_SUBGRAPH_ISO_H_
#define STREAMWORKS_MATCH_SUBGRAPH_ISO_H_

#include <vector>

#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// Options for the batch subgraph-isomorphism search.
struct IsoOptions {
  /// Strict match-span constraint: τ(match) < window.
  Timestamp window = kMaxTimestamp;
  /// Only data edges with ts >= min_ts participate.
  Timestamp min_ts = kMinTimestamp;
  /// Only data edges with id < max_edge_id participate (exclusive bound);
  /// kInvalidEdgeId means no bound.
  EdgeId max_edge_id = kInvalidEdgeId;
  /// Stop after this many matches.
  size_t max_matches = std::numeric_limits<size_t>::max();
};

/// Enumerates every isomorphic mapping of `query` among the stored edges of
/// `graph`, subject to `options`, invoking `sink` per mapping (return false
/// to stop early). This is the non-incremental "search the whole graph"
/// strategy (paper §2.2's repeated-search alternative); the incremental
/// engine uses it only as a correctness oracle and comparison baseline.
///
/// Distinct mappings are emitted exactly once each; automorphic images of
/// one data subgraph are distinct mappings and all emitted.
void ForEachMatch(const DynamicGraph& graph, const QueryGraph& query,
                  const IsoOptions& options, const MatchSink& sink);

/// Materialising convenience wrapper over ForEachMatch.
std::vector<Match> FindAllMatches(const DynamicGraph& graph,
                                  const QueryGraph& query,
                                  const IsoOptions& options = {});

}  // namespace streamworks

#endif  // STREAMWORKS_MATCH_SUBGRAPH_ISO_H_
