#include "streamworks/match/local_search.h"

#include "streamworks/common/logging.h"

namespace streamworks {

bool FindAnchoredMatches(const DynamicGraph& graph, const QueryGraph& query,
                         const std::vector<QueryEdgeId>& order,
                         EdgeId anchor_id, Timestamp window,
                         const MatchSink& sink) {
  SW_DCHECK(!order.empty());
  const EdgeRecord& record = graph.edge_record(anchor_id);

  Match partial(query);
  BindUndo undo;
  if (!TryBindEdge(graph, query, order[0], anchor_id, record, window,
                   &partial, &undo)) {
    return true;  // anchor does not fit this slot; nothing to enumerate
  }
  BacktrackLimits limits;
  limits.window = window;
  limits.max_edge_id = anchor_id;  // non-anchor edges strictly older
  const bool keep_going =
      ExtendMatch(graph, query, order, 1, limits, &partial, sink);
  UndoBindEdge(query, order[0], undo, &partial);
  return keep_going;
}

bool FindAnchoredMatchesSharded(const DynamicGraph& graph,
                                const QueryGraph& query,
                                const std::vector<QueryEdgeId>& order,
                                EdgeId anchor_id, Timestamp window,
                                const VertexIsLocalFn& is_local,
                                const MatchSink& sink,
                                const ExpandForward& forward) {
  SW_DCHECK(!order.empty());
  const EdgeRecord& record = graph.edge_record(anchor_id);

  Match partial(query);
  BindUndo undo;
  if (!TryBindEdge(graph, query, order[0], anchor_id, record, window,
                   &partial, &undo)) {
    return true;  // anchor does not fit this slot; nothing to enumerate
  }
  BacktrackLimits limits;
  limits.window = window;
  limits.max_edge_id = anchor_id;  // non-anchor edges strictly older
  const bool keep_going = ExtendMatchGated(graph, query, order, 1, limits,
                                           &partial, is_local, forward,
                                           sink);
  UndoBindEdge(query, order[0], undo, &partial);
  return keep_going;
}

bool ResumeAnchoredMatchesSharded(const DynamicGraph& graph,
                                  const QueryGraph& query,
                                  const std::vector<QueryEdgeId>& order,
                                  size_t from, Timestamp window,
                                  Match* partial,
                                  const VertexIsLocalFn& is_local,
                                  const MatchSink& sink,
                                  const ExpandForward& forward) {
  SW_DCHECK(partial->HasEdge(order[0]))
      << "forwarded expansion lost its anchor binding";
  BacktrackLimits limits;
  limits.window = window;
  limits.max_edge_id = partial->edge(order[0]);
  return ExtendMatchGated(graph, query, order, from, limits, partial,
                          is_local, forward, sink);
}

std::vector<Match> FindLeafMatches(const DynamicGraph& graph,
                                   const QueryGraph& query,
                                   Bitset64 leaf_edges, EdgeId anchor_id,
                                   Timestamp window) {
  std::vector<Match> out;
  for (int qe : leaf_edges) {
    const std::vector<QueryEdgeId> order = ConnectedEdgeOrder(
        query, leaf_edges, static_cast<QueryEdgeId>(qe));
    FindAnchoredMatches(graph, query, order, anchor_id, window,
                        [&](const Match& m) {
                          out.push_back(m);
                          return true;
                        });
  }
  return out;
}

}  // namespace streamworks
