#ifndef STREAMWORKS_MATCH_BACKTRACK_H_
#define STREAMWORKS_MATCH_BACKTRACK_H_

#include <functional>
#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// Receives each discovered match; return false to stop the enumeration.
using MatchSink = std::function<bool(const Match&)>;

/// Candidate-edge constraints shared by the batch matcher and the
/// incremental local search.
struct BacktrackLimits {
  /// Strict span constraint: every (partial) match keeps max-min < window.
  Timestamp window = kMaxTimestamp;
  /// Candidates must have ts >= min_ts (window-graph pruning).
  Timestamp min_ts = kMinTimestamp;
  /// Candidates must have id < max_edge_id. Local search sets this to the
  /// anchor's id so that every non-anchor edge strictly precedes the anchor
  /// — the rule that makes each mapping get discovered exactly once, when
  /// its newest edge arrives (DESIGN.md §3.2).
  EdgeId max_edge_id = kInvalidEdgeId;
};

/// Orders the edges of `edge_set` so that order[0] == first and every later
/// edge shares at least one vertex with the union of its predecessors.
/// `edge_set` must be connected (QueryGraph::IsEdgeSetConnected) and contain
/// `first`. This is the expansion order ExtendMatch consumes.
std::vector<QueryEdgeId> ConnectedEdgeOrder(const QueryGraph& query,
                                            Bitset64 edge_set,
                                            QueryEdgeId first);

/// Core backtracking extension: maps order[from..] one edge at a time,
/// enumerating candidate data edges from the adjacency of an already-bound
/// endpoint, under `limits` plus label equality, vertex/edge injectivity and
/// the strict window. `partial` must already bind every edge of
/// order[0..from) including endpoints. Emits each complete extension;
/// `partial` is restored before returning. Returns false iff the sink
/// requested a stop.
bool ExtendMatch(const DynamicGraph& graph, const QueryGraph& query,
                 const std::vector<QueryEdgeId>& order, size_t from,
                 const BacktrackLimits& limits, Match* partial,
                 const MatchSink& emit);

/// Consulted before an expansion step enumerates: true iff this execution
/// context may scan data vertex `v`'s adjacency (sharded execution answers
/// "does this shard own v").
using ScanGate = std::function<bool(VertexId)>;

/// Receives (partial, step) for a branch the gate refused; the caller
/// migrates it to wherever the scan is possible. `partial` is only valid
/// during the call — copy it.
using DeferSink = std::function<void(const Match& partial, size_t step)>;

/// ExtendMatch with a scan gate: identical enumeration, but each step first
/// asks `gate` about its scan vertex and hands refused branches to `defer`
/// instead of descending. A separate function (not a null-gate default on
/// ExtendMatch) so the single-graph hot path stays free of per-level
/// std::function checks.
bool ExtendMatchGated(const DynamicGraph& graph, const QueryGraph& query,
                      const std::vector<QueryEdgeId>& order, size_t from,
                      const BacktrackLimits& limits, Match* partial,
                      const ScanGate& gate, const DeferSink& defer,
                      const MatchSink& emit);

/// True if data edge `record` can serve as query edge `qe`: edge label and
/// both endpoint vertex labels match.
bool EdgeLabelsMatch(const DynamicGraph& graph, const QueryGraph& query,
                     QueryEdgeId qe, const EdgeRecord& record);

/// Binds query edge `qe` to data edge `de` (with `record`'s endpoints and
/// timestamp) in `partial`, if the binding is consistent: labels match,
/// endpoints agree with existing bindings or are fresh and injective, self
/// loops line up, the window holds, and `de` is unused. Returns false and
/// leaves `partial` untouched if any check fails; on success the caller must
/// eventually call UnbindAnchor with the returned undo record.
struct BindUndo {
  bool bound_src = false;
  bool bound_dst = false;
};
bool TryBindEdge(const DynamicGraph& graph, const QueryGraph& query,
                 QueryEdgeId qe, EdgeId de, const EdgeRecord& record,
                 Timestamp window, Match* partial, BindUndo* undo);

/// Reverses a successful TryBindEdge.
void UndoBindEdge(const QueryGraph& query, QueryEdgeId qe, BindUndo undo,
                  Match* partial);

}  // namespace streamworks

#endif  // STREAMWORKS_MATCH_BACKTRACK_H_
