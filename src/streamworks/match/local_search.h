#ifndef STREAMWORKS_MATCH_LOCAL_SEARCH_H_
#define STREAMWORKS_MATCH_LOCAL_SEARCH_H_

#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// The paper's *local search* (§4.1/§4.2): a subgraph search performed in
/// the neighbourhood of one newly arrived data edge for a small query
/// subgraph (a search primitive / SJ-Tree leaf).
///
/// The discipline that makes incremental search emit each mapping exactly
/// once: the anchor edge is the *newest* edge of the mapping, so every
/// non-anchor candidate is restricted to id < anchor_id. A mapping's
/// maximal edge id is unique, so exactly one (arriving edge, anchor slot)
/// pair produces it.

/// Enumerates matches of the sub-pattern `order` (a ConnectedEdgeOrder of a
/// leaf's edge set) where query edge order[0] is mapped to the data edge
/// `anchor_id`. `window` is the query's strict time window. Returns false
/// iff the sink stopped the enumeration.
bool FindAnchoredMatches(const DynamicGraph& graph, const QueryGraph& query,
                         const std::vector<QueryEdgeId>& order,
                         EdgeId anchor_id, Timestamp window,
                         const MatchSink& sink);

/// Convenience wrapper: tries every edge of `leaf_edges` as the anchor slot
/// for data edge `anchor_id` and collects all resulting leaf matches. The
/// engine proper precomputes the per-anchor-slot orders instead of calling
/// this (see sjtree/sj_tree.h), but tests and the naive baseline use it.
std::vector<Match> FindLeafMatches(const DynamicGraph& graph,
                                   const QueryGraph& query,
                                   Bitset64 leaf_edges, EdgeId anchor_id,
                                   Timestamp window);

// --- Sharded (vertex-partitioned) expansion ---------------------------------
//
// Under vertex partitioning a shard holds the complete adjacency only of
// the vertices it owns, so an expansion step may only *enumerate* from a
// locally owned scan vertex. The sharded variants thread a gate through the
// backtracking: before a step scans, the gate is asked whether the step's
// scan vertex is local; if not, the current partial (plus the step index to
// resume at) is handed to `forward` and that branch of the search migrates
// to the owning shard. Progress is monotone — the receiving shard owns the
// scan vertex, so the resumed step always enumerates there.

/// Receives a partial match whose next expansion step (`next_step` into the
/// order) needs a foreign shard's adjacency.
using ExpandForward =
    std::function<void(const Match& partial, size_t next_step)>;

/// True if this shard owns (holds the complete adjacency of) data vertex
/// `v`; the gate consulted before each expansion step scans.
using VertexIsLocalFn = std::function<bool(VertexId)>;

/// Sharded counterpart of FindAnchoredMatches: binds the anchor (the caller
/// runs this on the shard owning the arriving edge's source, which stores
/// the edge) and extends under the gate. Complete leaf matches go to
/// `sink`; branches leaving the shard go to `forward`.
bool FindAnchoredMatchesSharded(const DynamicGraph& graph,
                                const QueryGraph& query,
                                const std::vector<QueryEdgeId>& order,
                                EdgeId anchor_id, Timestamp window,
                                const VertexIsLocalFn& is_local,
                                const MatchSink& sink,
                                const ExpandForward& forward);

/// Resumes a forwarded expansion at `from` (the step the sending shard
/// could not scan). `partial` must bind every edge of order[0..from)
/// including the anchor order[0], whose id restores the exactly-once
/// candidate bound (id < anchor).
bool ResumeAnchoredMatchesSharded(const DynamicGraph& graph,
                                  const QueryGraph& query,
                                  const std::vector<QueryEdgeId>& order,
                                  size_t from, Timestamp window,
                                  Match* partial,
                                  const VertexIsLocalFn& is_local,
                                  const MatchSink& sink,
                                  const ExpandForward& forward);

}  // namespace streamworks

#endif  // STREAMWORKS_MATCH_LOCAL_SEARCH_H_
