#ifndef STREAMWORKS_MATCH_LOCAL_SEARCH_H_
#define STREAMWORKS_MATCH_LOCAL_SEARCH_H_

#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// The paper's *local search* (§4.1/§4.2): a subgraph search performed in
/// the neighbourhood of one newly arrived data edge for a small query
/// subgraph (a search primitive / SJ-Tree leaf).
///
/// The discipline that makes incremental search emit each mapping exactly
/// once: the anchor edge is the *newest* edge of the mapping, so every
/// non-anchor candidate is restricted to id < anchor_id. A mapping's
/// maximal edge id is unique, so exactly one (arriving edge, anchor slot)
/// pair produces it.

/// Enumerates matches of the sub-pattern `order` (a ConnectedEdgeOrder of a
/// leaf's edge set) where query edge order[0] is mapped to the data edge
/// `anchor_id`. `window` is the query's strict time window. Returns false
/// iff the sink stopped the enumeration.
bool FindAnchoredMatches(const DynamicGraph& graph, const QueryGraph& query,
                         const std::vector<QueryEdgeId>& order,
                         EdgeId anchor_id, Timestamp window,
                         const MatchSink& sink);

/// Convenience wrapper: tries every edge of `leaf_edges` as the anchor slot
/// for data edge `anchor_id` and collects all resulting leaf matches. The
/// engine proper precomputes the per-anchor-slot orders instead of calling
/// this (see sjtree/sj_tree.h), but tests and the naive baseline use it.
std::vector<Match> FindLeafMatches(const DynamicGraph& graph,
                                   const QueryGraph& query,
                                   Bitset64 leaf_edges, EdgeId anchor_id,
                                   Timestamp window);

}  // namespace streamworks

#endif  // STREAMWORKS_MATCH_LOCAL_SEARCH_H_
