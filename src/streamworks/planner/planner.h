#ifndef STREAMWORKS_PLANNER_PLANNER_H_
#define STREAMWORKS_PLANNER_PLANNER_H_

#include <array>
#include <string>
#include <string_view>

#include "streamworks/common/statusor.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/planner/selectivity.h"
#include "streamworks/sjtree/decomposition.h"

namespace streamworks {

/// The query decomposition strategies (paper §4.1): how a query graph is
/// partitioned into search primitives and in what order their matches are
/// joined.
enum class DecompositionStrategy {
  /// Single-edge leaves in a structural (BFS-from-edge-0) connected order;
  /// left-deep joins. The uninformed baseline plan.
  kLeftDeepEdgeOrder,
  /// Single-edge leaves: seed with the most selective edge, then greedily
  /// extend with the connectable edge that minimises the estimated
  /// cardinality of the accumulated join (System-R style) — keeping every
  /// intermediate partial-match population small, the paper's §4.1 goal;
  /// left-deep.
  kSelectivityLeftDeep,
  /// Greedy 2-edge primitives (wedges) chosen by triad rarity, leftovers
  /// as single edges; left-deep over primitives ordered by rarity. The
  /// Fig. 2 style decomposition.
  kPrimitivePairs,
  /// Selectivity-ordered single-edge leaves arranged as a balanced binary
  /// tree (ablation of tree *shape*); falls back to left-deep when a
  /// bisection would create an empty cut.
  kBalancedBisection,
};

inline constexpr std::array<DecompositionStrategy, 4>
    kAllDecompositionStrategies = {
        DecompositionStrategy::kLeftDeepEdgeOrder,
        DecompositionStrategy::kSelectivityLeftDeep,
        DecompositionStrategy::kPrimitivePairs,
        DecompositionStrategy::kBalancedBisection,
};

/// Short stable name ("left_deep_edge_order", ...) for tables and CLI.
std::string_view DecompositionStrategyName(DecompositionStrategy strategy);

/// Turns query graphs into validated SJ-Tree decompositions under a chosen
/// strategy, using a SelectivityEstimator fed by stream summarisation
/// (§4.3). With a null estimator, informed strategies degenerate to
/// deterministic structural orders.
class QueryPlanner {
 public:
  explicit QueryPlanner(const SelectivityEstimator* estimator = nullptr)
      : estimator_(estimator) {}

  /// Builds and validates the decomposition for `query` under `strategy`.
  StatusOr<Decomposition> Plan(const QueryGraph& query,
                               DecompositionStrategy strategy) const;

  /// Renders the decomposition with each node's estimated cardinality —
  /// the "query planning" pane of the demo (paper §1.1).
  std::string ExplainPlan(const QueryGraph& query, const Decomposition& d,
                          const Interner& interner) const;

 private:
  double Cardinality(const QueryGraph& query, Bitset64 edges) const;

  /// Single-edge leaves: most-selective seed, then greedy minimum
  /// prefix-cardinality connected order.
  std::vector<Bitset64> SelectivityConnectedOrder(
      const QueryGraph& query) const;

  /// Greedy rare-first wedge pairing; leftovers as single edges; leaves in
  /// ascending-cardinality connected order.
  std::vector<Bitset64> GreedyPrimitivePairs(const QueryGraph& query) const;

  const SelectivityEstimator* estimator_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PLANNER_PLANNER_H_
