#include "streamworks/planner/planner.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

std::string_view DecompositionStrategyName(DecompositionStrategy strategy) {
  switch (strategy) {
    case DecompositionStrategy::kLeftDeepEdgeOrder:
      return "left_deep_edge_order";
    case DecompositionStrategy::kSelectivityLeftDeep:
      return "selectivity_left_deep";
    case DecompositionStrategy::kPrimitivePairs:
      return "primitive_pairs";
    case DecompositionStrategy::kBalancedBisection:
      return "balanced_bisection";
  }
  return "unknown";
}

double QueryPlanner::Cardinality(const QueryGraph& query,
                                 Bitset64 edges) const {
  if (estimator_ == nullptr) return 1.0;
  return estimator_->SubgraphCardinality(query, edges);
}

std::vector<Bitset64> QueryPlanner::SelectivityConnectedOrder(
    const QueryGraph& query) const {
  const int n = query.num_edges();
  std::vector<double> card(n);
  for (int e = 0; e < n; ++e) {
    card[e] = Cardinality(query, Bitset64::Single(e));
  }
  // Seed with the globally most selective edge; ties break on edge id so
  // plans are deterministic.
  int seed = 0;
  for (int e = 1; e < n; ++e) {
    if (card[e] < card[seed]) seed = e;
  }
  std::vector<Bitset64> order = {Bitset64::Single(seed)};
  Bitset64 prefix = Bitset64::Single(seed);
  Bitset64 covered_vertices = query.VerticesOfEdges(prefix);
  Bitset64 remaining = query.AllEdges() - prefix;
  while (!remaining.Empty()) {
    // Greedy System-R style extension: among connectable edges, minimise
    // the estimated cardinality of the *accumulated* join — that is the
    // partial-match population the new internal node will hold. (Per-edge
    // greediness is not enough: a chain of rare edges meeting only at a
    // popular vertex still explodes the intermediate joins.)
    int best = -1;
    double best_score = 0;
    for (int e : remaining) {
      const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
      if (!covered_vertices.Contains(qe.src) &&
          !covered_vertices.Contains(qe.dst)) {
        continue;  // keeps the left-deep join connected
      }
      const double score =
          Cardinality(query, prefix | Bitset64::Single(e));
      if (best < 0 || score < best_score ||
          (score == best_score && card[e] < card[best])) {
        best = e;
        best_score = score;
      }
    }
    SW_CHECK_GE(best, 0) << "connected query must always extend";
    order.push_back(Bitset64::Single(best));
    prefix = prefix | Bitset64::Single(best);
    covered_vertices =
        covered_vertices | query.VerticesOfEdges(Bitset64::Single(best));
    remaining.Remove(best);
  }
  return order;
}

std::vector<Bitset64> QueryPlanner::GreedyPrimitivePairs(
    const QueryGraph& query) const {
  const int n = query.num_edges();
  // All connected 2-edge primitives, rare-first.
  struct Pair {
    int e1;
    int e2;
    double card;
  };
  std::vector<Pair> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Bitset64 mask = Bitset64::Single(i) | Bitset64::Single(j);
      if (!query.IsEdgeSetConnected(mask)) continue;
      pairs.push_back(Pair{i, j, Cardinality(query, mask)});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.card != b.card) return a.card < b.card;
    return std::tie(a.e1, a.e2) < std::tie(b.e1, b.e2);
  });
  Bitset64 covered;
  std::vector<Bitset64> leaves;
  for (const Pair& p : pairs) {
    if (covered.Contains(p.e1) || covered.Contains(p.e2)) continue;
    leaves.push_back(Bitset64::Single(p.e1) | Bitset64::Single(p.e2));
    covered.Add(p.e1);
    covered.Add(p.e2);
  }
  for (int e : query.AllEdges() - covered) {
    leaves.push_back(Bitset64::Single(e));
  }

  // Join order: ascending cardinality under the connectivity constraint.
  std::vector<double> leaf_card(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaf_card[i] = Cardinality(query, leaves[i]);
  }
  std::vector<bool> used(leaves.size(), false);
  std::vector<Bitset64> order;
  Bitset64 covered_vertices;
  for (size_t step = 0; step < leaves.size(); ++step) {
    int best = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (used[i]) continue;
      if (step > 0 &&
          !covered_vertices.Intersects(query.VerticesOfEdges(leaves[i]))) {
        continue;
      }
      if (best < 0 || leaf_card[i] < leaf_card[best]) {
        best = static_cast<int>(i);
      }
    }
    SW_CHECK_GE(best, 0) << "connected query must always extend";
    used[best] = true;
    order.push_back(leaves[best]);
    covered_vertices =
        covered_vertices | query.VerticesOfEdges(leaves[best]);
  }
  return order;
}

StatusOr<Decomposition> QueryPlanner::Plan(
    const QueryGraph& query, DecompositionStrategy strategy) const {
  switch (strategy) {
    case DecompositionStrategy::kLeftDeepEdgeOrder: {
      std::vector<Bitset64> leaves;
      Bitset64 covered_vertices;
      Bitset64 remaining = query.AllEdges();
      // Structural connected order: always the lowest-id connectable edge.
      while (!remaining.Empty()) {
        int pick = -1;
        for (int e : remaining) {
          const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
          if (leaves.empty() || covered_vertices.Contains(qe.src) ||
              covered_vertices.Contains(qe.dst)) {
            pick = e;
            break;
          }
        }
        SW_CHECK_GE(pick, 0);
        leaves.push_back(Bitset64::Single(pick));
        covered_vertices =
            covered_vertices | query.VerticesOfEdges(Bitset64::Single(pick));
        remaining.Remove(pick);
      }
      return Decomposition::MakeLeftDeep(query, leaves);
    }
    case DecompositionStrategy::kSelectivityLeftDeep:
      return Decomposition::MakeLeftDeep(query,
                                         SelectivityConnectedOrder(query));
    case DecompositionStrategy::kPrimitivePairs:
      return Decomposition::MakeLeftDeep(query, GreedyPrimitivePairs(query));
    case DecompositionStrategy::kBalancedBisection: {
      const std::vector<Bitset64> order = SelectivityConnectedOrder(query);
      auto balanced = Decomposition::MakeBalanced(query, order);
      if (balanced.ok()) return balanced;
      // Bisection can orphan a middle leaf from its half; the left-deep
      // tree over the same order is always valid.
      return Decomposition::MakeLeftDeep(query, order);
    }
  }
  return Status::InvalidArgument("unknown decomposition strategy");
}

std::string QueryPlanner::ExplainPlan(const QueryGraph& query,
                                      const Decomposition& d,
                                      const Interner& interner) const {
  std::ostringstream os;
  os << d.ToString(query, interner);
  os << "-- estimated cardinalities --\n";
  std::function<void(int, int)> render = [&](int n, int depth) {
    os << std::string(static_cast<size_t>(depth) * 2, ' ') << "n" << n
       << ": est=" << FormatDouble(Cardinality(query, d.node(n).edges), 1)
       << (d.IsLeaf(n) ? "  (search primitive)" : "") << "\n";
    if (!d.IsLeaf(n)) {
      render(d.node(n).left, depth + 1);
      render(d.node(n).right, depth + 1);
    }
  };
  render(d.root(), 0);
  return os.str();
}

}  // namespace streamworks
