#ifndef STREAMWORKS_PLANNER_SELECTIVITY_H_
#define STREAMWORKS_PLANNER_SELECTIVITY_H_

#include "streamworks/common/bitset64.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/planner/stats.h"

namespace streamworks {

/// Cardinality estimation for query subgraphs from SummaryStatistics.
///
/// Model:
///  * single query edge -> the exact typed-edge count
///    (src label, edge label, dst label) from the summary;
///  * 2-edge connected primitive (wedge) -> the triad-census count when
///    available, otherwise the independence estimate
///    card(e1) * card(e2) / count(shared vertex label);
///  * larger connected subgraphs -> chain-rule product: multiply edge
///    cardinalities, divide by the label count of every internal shared
///    vertex (the classic System-R style independence assumption).
///
/// Estimates drive the §4.1 goal — "push the most selective subgraph to the
/// lowest level of the join tree" — so *relative* order matters more than
/// absolute accuracy.
class SelectivityEstimator {
 public:
  /// `stats` may be null: every estimate degenerates to a constant, which
  /// turns selectivity-ordered strategies into plain structural orders.
  explicit SelectivityEstimator(const SummaryStatistics* stats)
      : stats_(stats) {}

  /// Estimated number of data edges matching query edge `qe`.
  double EdgeCardinality(const QueryGraph& query, QueryEdgeId qe) const;

  /// Estimated number of matches of the connected subgraph `edges`.
  /// 1-edge and wedge subsets get the precise models above; larger sets use
  /// the chain rule.
  double SubgraphCardinality(const QueryGraph& query, Bitset64 edges) const;

  bool has_stats() const { return stats_ != nullptr; }

 private:
  double WedgeCardinality(const QueryGraph& query, QueryEdgeId e1,
                          QueryEdgeId e2) const;

  const SummaryStatistics* stats_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PLANNER_SELECTIVITY_H_
