#ifndef STREAMWORKS_PLANNER_STATS_H_
#define STREAMWORKS_PLANNER_STATS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/dynamic_graph.h"

namespace streamworks {

/// Canonical key of a *multi-relational wedge* (2-edge triad): two edges
/// meeting at a centre vertex, each characterised by its direction relative
/// to the centre and its edge label. The two (direction, label) legs are
/// stored in sorted order so that the key is orientation-independent.
struct WedgeKey {
  LabelId center_vertex_label = kInvalidLabelId;
  bool leg1_out = false;  ///< Centre is the source of leg 1.
  LabelId leg1_label = kInvalidLabelId;
  bool leg2_out = false;
  LabelId leg2_label = kInvalidLabelId;

  /// Canonicalises leg order and packs into a hashable 64-bit key.
  uint64_t Pack() const;
};

/// Summarisation (paper §4.3): the three statistics families collected from
/// the data stream to drive query planning —
///   1. degree distribution (log2-bucketed, in and out),
///   2. vertex / edge type distribution (plus typed-edge triples, the
///      (src label, edge label, dst label) counts that selectivity uses),
///   3. multi-relational triad (wedge) distribution.
///
/// The collector observes edges *after* graph ingest, so it can read vertex
/// labels and current adjacency. Wedge counting costs O(degree) per edge,
/// so it supports subsampling: with sample_rate r, each arriving edge's
/// wedges are counted with probability r and WedgeCount() scales by 1/r.
class SummaryStatistics {
 public:
  /// `wedge_sample_rate` in (0, 1]; 1.0 counts every wedge exactly.
  explicit SummaryStatistics(double wedge_sample_rate = 1.0,
                             uint64_t seed = 0x57a75u);

  /// Disables (or re-enables) the triad census from the next Observe on.
  /// With the census off, estimators fall back to the independence
  /// assumption — the A2 ablation knob, and a cost saver for workloads
  /// with hub vertices where O(degree) per edge is too much.
  void set_wedge_census_enabled(bool enabled) {
    wedge_census_enabled_ = enabled;
  }

  /// Enables recency weighting: every `edges` observations, all label /
  /// typed-edge / wedge counts are halved (exponential decay with the
  /// given half-life). Without decay the statistics are cumulative and a
  /// drifting stream's old distribution dominates forever — the wrong
  /// input for adaptive re-planning (A3). 0 disables. Degree counters stay
  /// cumulative (they describe structure, not rates).
  void set_decay_half_life(uint64_t edges) { decay_half_life_ = edges; }

  /// Accounts for edge `id`, which must already be in `graph` (newest
  /// edge). Call once per ingested edge.
  void Observe(const DynamicGraph& graph, EdgeId id);

  // --- Type distributions ---------------------------------------------------
  uint64_t num_edges_observed() const { return num_edges_; }
  uint64_t VertexLabelCount(LabelId label) const;
  uint64_t EdgeLabelCount(LabelId label) const;
  /// Count of edges with the exact (src vertex label, edge label, dst
  /// vertex label) triple — the unit of edge selectivity.
  uint64_t TypedEdgeCount(LabelId src_label, LabelId edge_label,
                          LabelId dst_label) const;

  // --- Triads ------------------------------------------------------------------
  /// Estimated number of wedges with this key (scaled by the sample rate).
  double WedgeCount(const WedgeKey& key) const;
  /// True once at least one wedge was counted (estimators fall back to the
  /// independence assumption until then).
  bool has_wedge_counts() const { return !wedge_counts_.empty(); }

  // --- Degree distribution --------------------------------------------------
  /// Histogram over log2 degree buckets: bucket i counts vertices with
  /// degree in [2^i, 2^(i+1)) (bucket 0 holds degree 1; isolated vertices
  /// are not represented). Computed from live per-vertex counters.
  std::vector<uint64_t> DegreeHistogram(bool out_degree) const;

  /// Multi-line human-readable report of all three statistic families
  /// (degree histogram, label tables, top wedges) for the demo tables.
  std::string ReportTable(const Interner& interner) const;

 private:
  void CountWedgesAt(const DynamicGraph& graph, VertexId center,
                     bool new_leg_out, LabelId new_leg_label, EdgeId new_id);

  /// Halves every count table, erasing entries that reach zero.
  void DecayCounts();

  double sample_rate_;
  bool wedge_census_enabled_ = true;
  uint64_t decay_half_life_ = 0;
  uint64_t observed_since_decay_ = 0;
  Rng rng_;
  uint64_t num_edges_ = 0;

  std::unordered_map<LabelId, uint64_t> vertex_label_counts_;
  std::unordered_map<LabelId, uint64_t> edge_label_counts_;
  std::unordered_map<uint64_t, uint64_t> typed_edge_counts_;
  std::unordered_map<uint64_t, uint64_t> wedge_counts_;

  // Cumulative degree counters per internal vertex id (index == VertexId).
  std::vector<uint32_t> out_degree_;
  std::vector<uint32_t> in_degree_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PLANNER_STATS_H_
