#include "streamworks/planner/stats.h"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

#include "streamworks/common/hash.h"
#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

uint64_t PackTypedEdge(LabelId src_label, LabelId edge_label,
                       LabelId dst_label) {
  return (static_cast<uint64_t>(src_label) << 42) ^
         (static_cast<uint64_t>(edge_label) << 21) ^ dst_label;
}

}  // namespace

uint64_t WedgeKey::Pack() const {
  uint64_t a = (static_cast<uint64_t>(leg1_label) << 1) | (leg1_out ? 1 : 0);
  uint64_t b = (static_cast<uint64_t>(leg2_label) << 1) | (leg2_out ? 1 : 0);
  if (a > b) std::swap(a, b);
  return HashCombine(HashCombine(center_vertex_label, a), b);
}

SummaryStatistics::SummaryStatistics(double wedge_sample_rate, uint64_t seed)
    : sample_rate_(wedge_sample_rate), rng_(seed) {
  SW_CHECK(wedge_sample_rate > 0.0 && wedge_sample_rate <= 1.0)
      << "wedge sample rate must be in (0, 1]";
}

void SummaryStatistics::Observe(const DynamicGraph& graph, EdgeId id) {
  const EdgeRecord& record = graph.edge_record(id);
  ++num_edges_;
  ++edge_label_counts_[record.label];
  const LabelId src_label = graph.vertex_label(record.src);
  const LabelId dst_label = graph.vertex_label(record.dst);
  ++typed_edge_counts_[PackTypedEdge(src_label, record.label, dst_label)];

  // Per-vertex cumulative degrees; first sight of a vertex also counts its
  // label (labels are immutable per vertex).
  const auto grow_to = static_cast<size_t>(
      std::max(record.src, record.dst) + 1);
  if (out_degree_.size() < grow_to) {
    out_degree_.resize(grow_to, 0);
    in_degree_.resize(grow_to, 0);
  }
  if (out_degree_[record.src] == 0 && in_degree_[record.src] == 0) {
    ++vertex_label_counts_[src_label];
  }
  if (record.dst != record.src && out_degree_[record.dst] == 0 &&
      in_degree_[record.dst] == 0) {
    ++vertex_label_counts_[dst_label];
  }
  ++out_degree_[record.src];
  ++in_degree_[record.dst];

  // Triad census with subsampling (§4.3: triad statistics are the most
  // expensive summary; the paper flags them as the refinement knob).
  if (wedge_census_enabled_ &&
      (sample_rate_ >= 1.0 || rng_.NextDouble() < sample_rate_)) {
    CountWedgesAt(graph, record.src, /*new_leg_out=*/true, record.label, id);
    if (record.dst != record.src) {
      CountWedgesAt(graph, record.dst, /*new_leg_out=*/false, record.label,
                    id);
    }
  }

  if (decay_half_life_ > 0 && ++observed_since_decay_ >= decay_half_life_) {
    observed_since_decay_ = 0;
    DecayCounts();
  }
}

void SummaryStatistics::DecayCounts() {
  auto halve = [](auto& table) {
    for (auto it = table.begin(); it != table.end();) {
      it->second /= 2;
      if (it->second == 0) {
        it = table.erase(it);
      } else {
        ++it;
      }
    }
  };
  halve(vertex_label_counts_);
  halve(edge_label_counts_);
  halve(typed_edge_counts_);
  halve(wedge_counts_);
}

void SummaryStatistics::CountWedgesAt(const DynamicGraph& graph,
                                      VertexId center, bool new_leg_out,
                                      LabelId new_leg_label, EdgeId new_id) {
  const LabelId center_label = graph.vertex_label(center);
  auto count_against = [&](std::span<const AdjEntry> adj, bool other_out) {
    for (const AdjEntry& entry : adj) {
      if (entry.edge == new_id) continue;  // don't pair the edge with itself
      WedgeKey key;
      key.center_vertex_label = center_label;
      key.leg1_out = new_leg_out;
      key.leg1_label = new_leg_label;
      key.leg2_out = other_out;
      key.leg2_label = entry.label;
      ++wedge_counts_[key.Pack()];
    }
  };
  count_against(graph.OutEdges(center), /*other_out=*/true);
  count_against(graph.InEdges(center), /*other_out=*/false);
}

uint64_t SummaryStatistics::VertexLabelCount(LabelId label) const {
  auto it = vertex_label_counts_.find(label);
  return it == vertex_label_counts_.end() ? 0 : it->second;
}

uint64_t SummaryStatistics::EdgeLabelCount(LabelId label) const {
  auto it = edge_label_counts_.find(label);
  return it == edge_label_counts_.end() ? 0 : it->second;
}

uint64_t SummaryStatistics::TypedEdgeCount(LabelId src_label,
                                           LabelId edge_label,
                                           LabelId dst_label) const {
  auto it = typed_edge_counts_.find(
      PackTypedEdge(src_label, edge_label, dst_label));
  return it == typed_edge_counts_.end() ? 0 : it->second;
}

double SummaryStatistics::WedgeCount(const WedgeKey& key) const {
  auto it = wedge_counts_.find(key.Pack());
  if (it == wedge_counts_.end()) return 0.0;
  return static_cast<double>(it->second) / sample_rate_;
}

std::vector<uint64_t> SummaryStatistics::DegreeHistogram(
    bool out_degree) const {
  const std::vector<uint32_t>& degrees =
      out_degree ? out_degree_ : in_degree_;
  std::vector<uint64_t> hist;
  for (uint32_t d : degrees) {
    if (d == 0) continue;
    const int bucket = std::bit_width(d) - 1;  // log2 bucket
    if (hist.size() <= static_cast<size_t>(bucket)) {
      hist.resize(bucket + 1, 0);
    }
    ++hist[bucket];
  }
  return hist;
}

std::string SummaryStatistics::ReportTable(const Interner& interner) const {
  std::ostringstream os;
  os << "== Summary statistics (" << FormatCount(num_edges_)
     << " edges observed) ==\n";

  os << "-- degree distribution (log2 buckets: [2^i, 2^(i+1))) --\n";
  const auto out_hist = DegreeHistogram(true);
  const auto in_hist = DegreeHistogram(false);
  const size_t buckets = std::max(out_hist.size(), in_hist.size());
  os << "bucket     out-deg     in-deg\n";
  for (size_t i = 0; i < buckets; ++i) {
    std::ostringstream row;
    row << std::left << std::setw(11) << StrCat("2^", i) << std::setw(12)
        << FormatCount(i < out_hist.size() ? out_hist[i] : 0)
        << FormatCount(i < in_hist.size() ? in_hist[i] : 0);
    os << row.str() << "\n";
  }

  os << "-- vertex type distribution --\n";
  std::vector<std::pair<LabelId, uint64_t>> vlabels(
      vertex_label_counts_.begin(), vertex_label_counts_.end());
  std::sort(vlabels.begin(), vlabels.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [label, count] : vlabels) {
    os << "  " << interner.Name(label) << ": " << FormatCount(count) << "\n";
  }

  os << "-- edge type distribution --\n";
  std::vector<std::pair<LabelId, uint64_t>> elabels(
      edge_label_counts_.begin(), edge_label_counts_.end());
  std::sort(elabels.begin(), elabels.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [label, count] : elabels) {
    os << "  " << interner.Name(label) << ": " << FormatCount(count) << "\n";
  }

  os << "-- triad census: " << wedge_counts_.size()
     << " distinct wedge types";
  if (sample_rate_ < 1.0) os << " (sample rate " << sample_rate_ << ")";
  os << " --\n";
  return os.str();
}

}  // namespace streamworks
