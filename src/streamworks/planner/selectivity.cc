#include "streamworks/planner/selectivity.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

double SelectivityEstimator::EdgeCardinality(const QueryGraph& query,
                                             QueryEdgeId qe) const {
  if (stats_ == nullptr) return 1.0;
  const QueryEdge& edge = query.edge(qe);
  return static_cast<double>(stats_->TypedEdgeCount(
      query.vertex_label(edge.src), edge.label,
      query.vertex_label(edge.dst)));
}

double SelectivityEstimator::WedgeCardinality(const QueryGraph& query,
                                              QueryEdgeId e1,
                                              QueryEdgeId e2) const {
  const QueryEdge& a = query.edge(e1);
  const QueryEdge& b = query.edge(e2);
  // Centre: the smallest shared query vertex.
  const Bitset64 shared =
      query.VerticesOfEdges(Bitset64::Single(e1)) &
      query.VerticesOfEdges(Bitset64::Single(e2));
  SW_DCHECK(!shared.Empty()) << "wedge estimate on disjoint edges";
  const auto center = static_cast<QueryVertexId>(shared.First());

  if (stats_ != nullptr && stats_->has_wedge_counts()) {
    WedgeKey key;
    key.center_vertex_label = query.vertex_label(center);
    key.leg1_out = (a.src == center);
    key.leg1_label = a.label;
    key.leg2_out = (b.src == center);
    key.leg2_label = b.label;
    return stats_->WedgeCount(key);
  }
  // Independence fallback: card(a) * card(b) / |vertices with the centre
  // label|.
  const double denom =
      stats_ == nullptr
          ? 1.0
          : std::max<double>(
                1.0, static_cast<double>(stats_->VertexLabelCount(
                         query.vertex_label(center))));
  return EdgeCardinality(query, e1) * EdgeCardinality(query, e2) / denom;
}

double SelectivityEstimator::SubgraphCardinality(const QueryGraph& query,
                                                 Bitset64 edges) const {
  SW_DCHECK(!edges.Empty());
  if (edges.Count() == 1) {
    return EdgeCardinality(query, static_cast<QueryEdgeId>(edges.First()));
  }
  if (edges.Count() == 2) {
    const int e1 = edges.First();
    const int e2 = (edges - Bitset64::Single(e1)).First();
    return WedgeCardinality(query, static_cast<QueryEdgeId>(e1),
                            static_cast<QueryEdgeId>(e2));
  }
  // Chain rule: product of edge cardinalities divided by the label count of
  // every shared vertex, once per extra incidence.
  double estimate = 1.0;
  for (int e : edges) {
    estimate *= EdgeCardinality(query, static_cast<QueryEdgeId>(e));
  }
  for (int v : query.VerticesOfEdges(edges)) {
    int incidences = 0;
    for (const QueryIncidence& inc :
         query.incident(static_cast<QueryVertexId>(v))) {
      if (edges.Contains(inc.edge)) ++incidences;
    }
    if (incidences <= 1) continue;
    const double denom =
        stats_ == nullptr
            ? 1.0
            : std::max<double>(
                  1.0, static_cast<double>(stats_->VertexLabelCount(
                           query.vertex_label(
                               static_cast<QueryVertexId>(v)))));
    for (int i = 1; i < incidences; ++i) estimate /= denom;
  }
  return estimate;
}

}  // namespace streamworks
