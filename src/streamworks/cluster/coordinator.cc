#include "streamworks/cluster/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "streamworks/common/str_util.h"
#include "streamworks/sjtree/exchange.h"

namespace streamworks {

namespace {

constexpr size_t kMaxExchangeItemsPerFrame = 512;

}  // namespace

StatusOr<std::pair<std::string, int>> ParseHostPort(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return Status::InvalidArgument(StrCat("expected host:port, got '", spec,
                                          "'"));
  }
  int port = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrCat("bad port in '", spec, "'"));
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument(StrCat("port out of range in '", spec,
                                            "'"));
    }
  }
  return std::make_pair(spec.substr(0, colon), port);
}

DistributedBackend::DistributedBackend(DistributedBackendOptions options,
                                       Interner* interner)
    : options_(std::move(options)),
      interner_(interner),
      partitioner_(options_.partitioner_seed),
      coord_graph_(&wire_interner_),
      epoch_ring_(options_.epoch_trace_capacity) {}

DistributedBackend::~DistributedBackend() { Stop(); }

Status DistributedBackend::Start() {
  if (options_.workers.empty()) {
    return Status::InvalidArgument("a cluster needs at least one worker");
  }
  const int n = static_cast<int>(options_.workers.size());
  workers_.resize(options_.workers.size());
  for (int i = 0; i < n; ++i) {
    WorkerState& w = workers_[static_cast<size_t>(i)];
    SW_ASSIGN_OR_RETURN(auto host_port, ParseHostPort(options_.workers[i]));
    w.host = host_port.first;
    w.port = host_port.second;
    SW_ASSIGN_OR_RETURN(
        auto link,
        PeerLink::ConnectTcpRetry(w.host, w.port, options_.connect_deadline_ms));
    w.link.emplace(std::move(link));
    CtrlHello hello;
    hello.num_shards = n;
    hello.shard_index = i;
    hello.partitioner_seed = options_.partitioner_seed;
    SW_RETURN_IF_ERROR(w.link->SendFrame(EncodeHelloFrame(hello)));
    auto ack_or = w.link->ReadFrame(&wire_interner_, options_.ack_timeout_ms);
    SW_RETURN_IF_ERROR(ack_or.status());
    if (ack_or.value().type != CtrlType::kHelloAck) {
      return Status::InvalidArgument(
          StrCat("worker ", i, " answered Hello with frame type ",
                 static_cast<int>(ack_or.value().type)));
    }
    if (ack_or.value().hello_ack.applied_frames != 0) {
      return Status::FailedPrecondition(
          StrCat("worker ", i, " (", options_.workers[i], ") holds ",
                 ack_or.value().hello_ack.applied_frames,
                 " frames of state from a previous cluster run; clear its "
                 "data dir (or point it elsewhere) to join a fresh cluster"));
    }
  }
  started_ = true;
  if (options_.registry != nullptr) {
    federation_token_ = options_.registry->AddCollector(
        [this](MetricSnapshotBuilder* out) { ContributeClusterMetrics(out); });
  }
  pump_ = std::thread([this] { PumpLoop(); });
  return OkStatus();
}

void DistributedBackend::Stop() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (stop_) return;
    stop_ = true;
  }
  pending_cv_.notify_all();
  space_cv_.notify_all();
  if (pump_.joinable()) pump_.join();
  if (federation_token_ >= 0) {
    options_.registry->RemoveCollector(federation_token_);
    federation_token_ = -1;
  }
  std::lock_guard<std::mutex> lock(cluster_mu_);
  for (WorkerState& w : workers_) {
    if (w.link.has_value()) w.link->Close();
  }
}

void DistributedBackend::SyncLabelNames() {
  std::lock_guard<std::mutex> lock(label_mu_);
  while (label_names_.size() < interner_->size()) {
    label_names_.push_back(
        interner_->Name(static_cast<LabelId>(label_names_.size())));
  }
}

std::string_view DistributedBackend::CachedLabelName(LabelId id) {
  // Deque elements are append-only and never move, so the view outlives
  // the lock — encoders may keep it across the whole frame build.
  std::lock_guard<std::mutex> lock(label_mu_);
  return label_names_[id];
}

Status DistributedBackend::SendStateFrame(WorkerState* w, std::string frame) {
  w->retained.push_back(frame);
  ++w->sent_state;
  if (!w->link.has_value() || !w->link->connected()) {
    return RecoverLink(w);
  }
  const Status sent = w->link->SendFrame(frame);
  if (sent.ok()) return OkStatus();
  return RecoverLink(w);
}

Status DistributedBackend::RecoverLink(WorkerState* w) {
  if (w->link.has_value()) w->link->Close();
  SW_ASSIGN_OR_RETURN(auto link,
                      PeerLink::ConnectTcpRetry(w->host, w->port,
                                                options_.reconnect_deadline_ms));
  w->link.emplace(std::move(link));
  CtrlHello hello;
  hello.num_shards = static_cast<int32_t>(workers_.size());
  hello.shard_index =
      static_cast<int32_t>(w - workers_.data());
  hello.partitioner_seed = options_.partitioner_seed;
  hello.exchange_items_received = w->exchange_received;
  hello.completions_received = w->completions_received;
  SW_RETURN_IF_ERROR(w->link->SendFrame(EncodeHelloFrame(hello)));
  // The worker replays before answering, then sends HelloAck first and
  // its regenerated-but-undelivered outputs right after — so the ack is
  // always the first frame on the recovered link.
  auto ack_or = w->link->ReadFrame(&wire_interner_, options_.ack_timeout_ms);
  SW_RETURN_IF_ERROR(ack_or.status());
  if (ack_or.value().type != CtrlType::kHelloAck) {
    return Status::Internal("worker did not answer recovery Hello with ack");
  }
  const uint64_t durable = ack_or.value().hello_ack.applied_frames;
  if (durable < w->pruned_base || durable > w->sent_state) {
    return Status::Internal(
        StrCat("worker log has ", durable, " frames but coordinator retains [",
               w->pruned_base, ", ", w->sent_state,
               ") — state streams diverged"));
  }
  // Resend what the crash swallowed: frames [durable, sent_state).
  for (uint64_t seq = durable; seq < w->sent_state; ++seq) {
    SW_RETURN_IF_ERROR(
        w->link->SendFrame(w->retained[seq - w->pruned_base]));
  }
  return OkStatus();
}

Status DistributedBackend::HandleWorkerFrame(WorkerState* from,
                                             const CtrlFrame& frame) {
  switch (frame.type) {
    case CtrlType::kExchange: {
      from->exchange_received += frame.exchange.items.size();
      relays_total_ += frame.exchange.items.size();
      const uint64_t relay_start = PipelineMetrics::NowMicros();
      // Star relay: group by destination shard, forward as state frames
      // (a relayed item mutates the receiver, so it must survive a
      // receiver crash like any batch would).
      std::map<int32_t, CtrlExchange> by_dest;
      for (const CtrlExchangeItem& item : frame.exchange.items) {
        if (item.dest < 0 ||
            item.dest >= static_cast<int32_t>(workers_.size())) {
          return Status::Internal(
              StrCat("exchange item routed to shard ", item.dest, " of ",
                     workers_.size()));
        }
        by_dest[item.dest].items.push_back(item);
      }
      const LabelNameFn name = [this](LabelId id) -> std::string_view {
        return wire_interner_.Name(id);
      };
      for (auto& [dest, exchange] : by_dest) {
        WorkerState* to = &workers_[static_cast<size_t>(dest)];
        for (size_t begin = 0; begin < exchange.items.size();
             begin += kMaxExchangeItemsPerFrame) {
          const size_t end = std::min(exchange.items.size(),
                                      begin + kMaxExchangeItemsPerFrame);
          CtrlExchange chunk;
          chunk.items.assign(
              exchange.items.begin() + static_cast<ptrdiff_t>(begin),
              exchange.items.begin() + static_cast<ptrdiff_t>(end));
          SW_RETURN_IF_ERROR(
              SendStateFrame(to, EncodeExchangeFrame(chunk, name)));
        }
      }
      const uint64_t relay_us = PipelineMetrics::NowMicros() - relay_start;
      relay_forward_us_ += relay_us;
      if (options_.pipeline != nullptr) {
        options_.pipeline->Record(PipelineStage::kExchangeRelay, relay_us, -1,
                                  -1, frame.exchange.items.size());
      }
      return OkStatus();
    }
    case CtrlType::kCompletion: {
      ++from->completions_received;
      const auto it = queries_.find(frame.completion.query_id);
      if (it == queries_.end()) {
        // Unregistered while the completion was in flight; the contract
        // ("no callbacks after Unregister returns") says drop it.
        return OkStatus();
      }
      auto match_or = MatchExchange::Localize(&coord_graph_, it->second.query,
                                              frame.completion.match);
      SW_RETURN_IF_ERROR(match_or.status());
      if (suppress_.load(std::memory_order_relaxed)) return OkStatus();
      CompleteMatch cm;
      cm.query_id = frame.completion.query_id;
      cm.match = std::move(match_or).value();
      cm.completed_at = frame.completion.completed_at;
      cm.graph = &coord_graph_;
      it->second.callback(cm);
      return OkStatus();
    }
    default:
      // Stale acks from an abandoned await survive a reconnect race;
      // ignoring them is always safe (awaits match on round/type).
      return OkStatus();
  }
}

StatusOr<CtrlFrame> DistributedBackend::AwaitFrame(WorkerState* w,
                                                   CtrlType type) {
  while (true) {
    auto frame_or = w->link->ReadFrame(&wire_interner_, options_.ack_timeout_ms);
    SW_RETURN_IF_ERROR(frame_or.status());
    if (frame_or.value().type == type) return frame_or;
    SW_RETURN_IF_ERROR(HandleWorkerFrame(w, frame_or.value()));
  }
}

Status DistributedBackend::AwaitBarrierAck(WorkerState* w, uint32_t round) {
  while (true) {
    auto frame_or = w->link->ReadFrame(&wire_interner_, options_.ack_timeout_ms);
    if (!frame_or.ok()) {
      // Mid-barrier link failure: recover (replay + resend restores the
      // worker past this barrier's frames) and re-barrier just this
      // worker so it flushes and acks again.
      SW_RETURN_IF_ERROR(RecoverLink(w));
      CtrlBarrier barrier;
      barrier.round = round;
      SW_RETURN_IF_ERROR(w->link->SendFrame(EncodeBarrierFrame(barrier)));
      continue;
    }
    const CtrlFrame& frame = frame_or.value();
    if (frame.type == CtrlType::kBarrierAck) {
      if (frame.barrier_ack.round != round) continue;  // stale round
      // The ack's durable-frame count lets us drop the retained prefix:
      // those frames survive in the worker's log, so a crash replays
      // them locally and we will never need to resend them.
      while (w->pruned_base < frame.barrier_ack.applied_frames &&
             !w->retained.empty()) {
        w->retained.pop_front();
        ++w->pruned_base;
      }
      return OkStatus();
    }
    SW_RETURN_IF_ERROR(HandleWorkerFrame(w, frame));
  }
}

Status DistributedBackend::BarrierFixpoint(EpochPhases* phases) {
  uint64_t before;
  bool first_round = true;
  do {
    before = relays_total_;
    const uint64_t forward_before = relay_forward_us_;
    const uint64_t round_start = PipelineMetrics::NowMicros();
    ++barrier_round_;
    CtrlBarrier barrier;
    barrier.round = barrier_round_;
    const std::string frame = EncodeBarrierFrame(barrier);
    for (WorkerState& w : workers_) {
      if (!w.link.has_value() || !w.link->connected()) {
        SW_RETURN_IF_ERROR(RecoverLink(&w));
      }
      const Status sent = w.link->SendFrame(frame);
      if (!sent.ok()) {
        SW_RETURN_IF_ERROR(RecoverLink(&w));
        SW_RETURN_IF_ERROR(w.link->SendFrame(frame));
      }
    }
    for (WorkerState& w : workers_) {
      const uint64_t wait_start = PipelineMetrics::NowMicros();
      SW_RETURN_IF_ERROR(AwaitBarrierAck(&w, barrier_round_));
      if (options_.pipeline != nullptr) {
        options_.pipeline->Record(PipelineStage::kBarrierWait,
                                  PipelineMetrics::NowMicros() - wait_start);
      }
    }
    // Relays sent during the acks are state frames queued behind nothing:
    // if any moved, another round flushes their consequences.
    const uint64_t items_moved = relays_total_ - before;
    if (items_moved > 0) relay_items_per_round_.Record(items_moved);
    if (phases != nullptr) {
      const uint64_t round_us = PipelineMetrics::NowMicros() - round_start;
      // Relay forwarding nests inside the round's ack waits; the
      // difference of the accumulator carves it out so apply/barrier time
      // never double-counts it.
      const uint64_t forward_us =
          std::min(relay_forward_us_ - forward_before, round_us);
      phases->relay_us += forward_us;
      // Round 1's wait is dominated by workers applying the epoch's
      // batches; later rounds are exchange settle.
      if (first_round) {
        phases->apply_us += round_us - forward_us;
      } else {
        phases->barrier_us += round_us - forward_us;
      }
      if (items_moved > 0) {
        ++phases->relay_rounds;
        phases->relayed_items += items_moved;
      }
    }
    first_round = false;
  } while (relays_total_ != before);
  if (group_watermark_ > last_broadcast_watermark_) {
    const uint64_t commit_start = PipelineMetrics::NowMicros();
    CtrlCommit commit;
    commit.watermark = group_watermark_;
    const std::string frame = EncodeCommitFrame(commit);
    for (WorkerState& w : workers_) {
      SW_RETURN_IF_ERROR(SendStateFrame(&w, frame));
    }
    last_broadcast_watermark_ = group_watermark_;
    if (phases != nullptr) {
      phases->commit_us += PipelineMetrics::NowMicros() - commit_start;
    }
  }
  return OkStatus();
}

bool DistributedBackend::AdmitEdge(const StreamEdge& edge) {
  // Mirrors ParallelEngineGroup::AdmitPartitionedEdge, including AddEdge's
  // side effect that an edge rejected on its dst label still records its
  // src — shards only see edges incident to owned vertices, so label
  // consistency must be enforced once, group-wide, here.
  if (edge.ts < 0 || edge.ts < group_watermark_) {
    rejected_edges_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto [src_it, src_new] =
      admitted_vertex_labels_.try_emplace(edge.src, edge.src_label);
  if (!src_new && src_it->second != edge.src_label) {
    rejected_edges_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto [dst_it, dst_new] =
      admitted_vertex_labels_.try_emplace(edge.dst, edge.dst_label);
  if (!dst_new && dst_it->second != edge.dst_label) {
    rejected_edges_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

StatusOr<size_t> DistributedBackend::RunEpoch() {
  std::vector<StreamEdge> epoch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const size_t take =
        std::min(pending_.size(), static_cast<size_t>(options_.epoch_edges));
    epoch.assign(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(take));
  }
  if (epoch.empty()) return size_t{0};
  space_cv_.notify_all();

  const uint64_t batch_start = PipelineMetrics::NowMicros();
  const int n = static_cast<int>(workers_.size());
  std::vector<CtrlBatch> batches(workers_.size());
  for (const StreamEdge& edge : epoch) {
    if (!AdmitEdge(edge)) continue;
    const EdgeId id = next_global_edge_id_++;
    group_watermark_ = edge.ts;
    const int src_owner = partitioner_.OwnerShard(edge.src, n);
    const int dst_owner = partitioner_.OwnerShard(edge.dst, n);
    CtrlShardEdge routed;
    routed.edge = edge;
    routed.global_id = id;
    routed.run_anchors = true;  // exactly one endpoint owner anchors
    batches[static_cast<size_t>(src_owner)].edges.push_back(routed);
    if (dst_owner != src_owner) {
      routed.run_anchors = false;
      batches[static_cast<size_t>(dst_owner)].edges.push_back(routed);
    }
  }
  const LabelNameFn name = [this](LabelId id) -> std::string_view {
    return CachedLabelName(id);
  };
  for (int i = 0; i < n; ++i) {
    if (batches[static_cast<size_t>(i)].edges.empty()) continue;
    SW_RETURN_IF_ERROR(
        SendStateFrame(&workers_[static_cast<size_t>(i)],
                       EncodeBatchFrame(batches[static_cast<size_t>(i)], name)));
  }
  const uint64_t batch_us = PipelineMetrics::NowMicros() - batch_start;
  EpochPhases phases;
  SW_RETURN_IF_ERROR(BarrierFixpoint(&phases));

  EpochTraceEntry entry;
  entry.epoch = epoch_ring_.total_pushed() + 1;  // 1-based epoch id
  entry.edges = epoch.size();
  entry.relay_rounds = phases.relay_rounds;
  entry.relayed_items = phases.relayed_items;
  entry.batch_us = batch_us;
  entry.apply_us = phases.apply_us;
  entry.relay_us = phases.relay_us;
  entry.barrier_us = phases.barrier_us;
  entry.commit_us = phases.commit_us;
  entry.total_us = PipelineMetrics::NowMicros() - batch_start;
  entry.at_us = PipelineMetrics::NowMicros();
  epoch_ring_.Push(entry);
  phase_batch_us_.Record(batch_us);
  phase_apply_us_.Record(phases.apply_us);
  phase_relay_us_.Record(phases.relay_us);
  phase_barrier_us_.Record(phases.barrier_us);
  phase_commit_us_.Record(phases.commit_us);
  return epoch.size();
}

Status DistributedBackend::DrainPending() {
  while (true) {
    SW_ASSIGN_OR_RETURN(const size_t taken, RunEpoch());
    if (taken == 0) return OkStatus();
  }
}

void DistributedBackend::PumpLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
    }
    std::lock_guard<std::mutex> lock(cluster_mu_);
    auto taken_or = RunEpoch();
    if (!taken_or.ok()) {
      // An epoch failure (a worker past its recovery deadline) poisons
      // ingest but not the control surface: report and keep trying — a
      // returning worker is replayed back to health by the next attempt.
      std::fprintf(stderr, "coordinator: epoch failed: %s\n",
                   taken_or.status().ToString().c_str());
    }
  }
}

StatusOr<int> DistributedBackend::Register(const QueryGraph& query,
                                           DecompositionStrategy strategy,
                                           Timestamp window,
                                           MatchCallback callback) {
  SyncLabelNames();
  std::lock_guard<std::mutex> lock(cluster_mu_);
  SW_RETURN_IF_ERROR(DrainPending());

  CtrlRegister reg;
  reg.expect_id = next_query_id_;
  reg.strategy = static_cast<uint8_t>(strategy);
  reg.window = window;
  reg.name = query.name();
  reg.vertex_labels.reserve(static_cast<size_t>(query.num_vertices()));
  for (int v = 0; v < query.num_vertices(); ++v) {
    reg.vertex_labels.push_back(interner_->Name(query.vertex_label(v)));
  }
  reg.edges.reserve(query.edges().size());
  for (const QueryEdge& e : query.edges()) {
    CtrlQueryEdge edge;
    edge.src = static_cast<uint8_t>(e.src);
    edge.dst = static_cast<uint8_t>(e.dst);
    edge.label = interner_->Name(e.label);
    reg.edges.push_back(std::move(edge));
  }
  const std::string frame = EncodeRegisterFrame(reg);
  for (WorkerState& w : workers_) {
    SW_RETURN_IF_ERROR(SendStateFrame(&w, frame));
  }
  // Await every ack before unsuppressing: registration is a group
  // decision, and backfill exchange items interleave with the acks.
  std::string first_error;
  for (WorkerState& w : workers_) {
    SW_ASSIGN_OR_RETURN(const CtrlFrame ack,
                        AwaitFrame(&w, CtrlType::kRegisterAck));
    if (!ack.register_ack.ok) {
      // Deterministic validation failure: every worker refused the same
      // way, no id was consumed anywhere.
      if (first_error.empty()) first_error = ack.register_ack.error;
      continue;
    }
    if (ack.register_ack.id != reg.expect_id) {
      return Status::Internal(
          StrCat("worker assigned query id ", ack.register_ack.id,
                 ", coordinator expected ", reg.expect_id));
    }
  }
  if (!first_error.empty()) {
    return Status::InvalidArgument(first_error);
  }
  // Let the distributed backfill's cross-shard traffic settle, then lift
  // suppression everywhere: matches that completed before registration
  // stay unreported, exactly like single-engine mid-stream registration.
  SW_RETURN_IF_ERROR(BarrierFixpoint());
  const std::string end_backfill = EncodeEndBackfillFrame();
  for (WorkerState& w : workers_) {
    SW_RETURN_IF_ERROR(SendStateFrame(&w, end_backfill));
  }
  QueryState state;
  state.query = query;
  state.callback = std::move(callback);
  queries_.emplace(next_query_id_, std::move(state));
  return next_query_id_++;
}

Status DistributedBackend::Unregister(int query_id) {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  SW_RETURN_IF_ERROR(DrainPending());
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("query ", query_id, " is not registered"));
  }
  // First barrier delivers what already completed; Unregister then stops
  // the workers; the second barrier flushes any stragglers their acks
  // pushed out, so after erase no callback can fire.
  SW_RETURN_IF_ERROR(BarrierFixpoint());
  CtrlUnregister unreg;
  unreg.query_id = query_id;
  const std::string frame = EncodeUnregisterFrame(unreg);
  for (WorkerState& w : workers_) {
    SW_RETURN_IF_ERROR(SendStateFrame(&w, frame));
  }
  SW_RETURN_IF_ERROR(BarrierFixpoint());
  queries_.erase(it);
  return OkStatus();
}

StatusOr<QueryRuntimeInfo> DistributedBackend::Info(int query_id) {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  SW_RETURN_IF_ERROR(DrainPending());
  if (queries_.find(query_id) == queries_.end()) {
    return Status::NotFound(StrCat("query ", query_id, " is not registered"));
  }
  CtrlInfo info;
  info.query_id = query_id;
  const std::string frame = EncodeInfoFrame(info);
  QueryRuntimeInfo out;
  out.query_id = query_id;
  const size_t home =
      static_cast<size_t>(query_id) % workers_.size();
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w = workers_[i];
    SW_RETURN_IF_ERROR(w.link->SendFrame(frame));
    SW_ASSIGN_OR_RETURN(const CtrlFrame ack,
                        AwaitFrame(&w, CtrlType::kInfoAck));
    if (!ack.info_ack.ok) {
      return Status::Internal(StrCat("worker ", i, ": ", ack.info_ack.error));
    }
    // Same aggregation as the in-process group: the home shard (where
    // kComplete items deliver) owns the completion count; live/peak and
    // per-node counters sum element-wise across the replicated trees.
    if (i == home) {
      out.name = ack.info_ack.name;
      out.window = ack.info_ack.window;
      out.completions = ack.info_ack.completions;
    }
    out.live_partial_matches += ack.info_ack.live_partial_matches;
    out.peak_partial_matches += ack.info_ack.peak_partial_matches;
    if (out.nodes.size() < ack.info_ack.nodes.size()) {
      out.nodes.resize(ack.info_ack.nodes.size());
    }
    for (size_t j = 0; j < ack.info_ack.nodes.size(); ++j) {
      const CtrlNodeRuntime& node = ack.info_ack.nodes[j];
      SjNodeRuntime& agg = out.nodes[j];
      agg.node = node.node;
      agg.is_leaf = node.is_leaf;
      agg.query_edges = node.query_edges;
      agg.matches_inserted += node.matches_inserted;
      agg.probes += node.probes;
      agg.join_attempts += node.join_attempts;
      agg.joins_succeeded += node.joins_succeeded;
      agg.live_partial_matches += node.live_partial_matches;
    }
  }
  return out;
}

Status DistributedBackend::Feed(const StreamEdge& edge) {
  SyncLabelNames();
  std::unique_lock<std::mutex> lock(pending_mu_);
  space_cv_.wait(lock, [this] {
    return stop_ || pending_.size() < options_.max_pending_edges;
  });
  if (stop_) return Status::FailedPrecondition("backend is stopped");
  pending_.push_back(edge);
  lock.unlock();
  pending_cv_.notify_one();
  return OkStatus();
}

Status DistributedBackend::FeedBatch(const EdgeBatch& batch,
                                     size_t* rejected_out) {
  // Asynchronous ingest: admission rejections surface only in the
  // aggregate counter, per the backend contract.
  if (rejected_out != nullptr) *rejected_out = 0;
  SyncLabelNames();
  std::unique_lock<std::mutex> lock(pending_mu_);
  for (const StreamEdge& edge : batch) {
    space_cv_.wait(lock, [this] {
      return stop_ || pending_.size() < options_.max_pending_edges;
    });
    if (stop_) return Status::FailedPrecondition("backend is stopped");
    pending_.push_back(edge);
  }
  lock.unlock();
  pending_cv_.notify_one();
  return OkStatus();
}

void DistributedBackend::Flush() {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  const Status drained = DrainPending();
  if (!drained.ok()) {
    std::fprintf(stderr, "coordinator: flush drain failed: %s\n",
                 drained.ToString().c_str());
    return;
  }
  const Status settled = BarrierFixpoint();
  if (!settled.ok()) {
    std::fprintf(stderr, "coordinator: flush barrier failed: %s\n",
                 settled.ToString().c_str());
  }
}

std::vector<ShardLoadSnapshot> DistributedBackend::ShardLoads() {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  if (!DrainPending().ok()) return {};
  std::vector<ShardLoadSnapshot> out;
  const std::string frame = EncodeStatsFrame();
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w = workers_[i];
    if (!w.link->SendFrame(frame).ok()) continue;
    auto ack_or = AwaitFrame(&w, CtrlType::kStatsAck);
    if (!ack_or.ok()) continue;
    const CtrlStatsAck& stats = ack_or.value().stats_ack;
    ShardLoadSnapshot snap;
    snap.shard = static_cast<int>(i);
    snap.sharding = "distributed";
    snap.retained_edges = stats.retained_edges;
    snap.retained_vertices = stats.retained_vertices;
    snap.evicted_edges = stats.evicted_edges;
    snap.edges_processed = stats.edges_processed;
    snap.completions = stats.completions;
    snap.live_partial_matches = stats.live_partial_matches;
    snap.matches_forwarded = stats.exchange.total_sent();
    snap.matches_received = stats.exchange.total_received();
    out.push_back(snap);
  }
  return out;
}

Status DistributedBackend::PullMetricsReport(WorkerState* w) {
  if (!w->link.has_value() || !w->link->connected()) {
    return Status::Unavailable("worker link is down");
  }
  const Status sent = w->link->SendFrame(EncodeMetricsRequestFrame());
  if (!sent.ok()) {
    w->link->Close();
    return sent;
  }
  while (true) {
    auto frame_or =
        w->link->ReadFrame(&wire_interner_, options_.metrics_timeout_ms);
    if (!frame_or.ok()) {
      // Never RecoverLink here: a scrape must not block on the 30s
      // reconnect budget. Close the link and keep the stale cache; the
      // pump's normal recovery heals the worker on its next epoch.
      w->link->Close();
      return frame_or.status();
    }
    if (frame_or.value().type == CtrlType::kMetricsReport) {
      w->report = std::move(frame_or.value().metrics_report);
      w->has_report = true;
      w->report_at_us = PipelineMetrics::NowMicros();
      return OkStatus();
    }
    SW_RETURN_IF_ERROR(HandleWorkerFrame(w, frame_or.value()));
  }
}

void DistributedBackend::RefreshReports(uint64_t now_us) {
  const uint64_t cache_us =
      static_cast<uint64_t>(options_.metrics_cache_ms) * 1000;
  for (WorkerState& w : workers_) {
    if (w.has_report && now_us - w.report_at_us < cache_us) continue;
    const Status pulled = PullMetricsReport(&w);
    if (!pulled.ok()) {
      std::fprintf(stderr, "coordinator: metrics pull from %s:%d failed: %s\n",
                   w.host.c_str(), w.port, pulled.ToString().c_str());
    }
  }
}

ClusterObsSnapshot DistributedBackend::BuildObsSnapshot(uint64_t now_us) {
  ClusterObsSnapshot snap;
  snap.epochs = epoch_ring_.total_pushed();
  snap.stale_threshold_us =
      static_cast<uint64_t>(options_.stale_report_threshold_ms) * 1000;
  snap.healthy = !workers_.empty();
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w = workers_[i];
    WorkerObsSnapshot row;
    row.shard = static_cast<int>(i);
    row.host = w.host;
    row.port = w.port;
    row.connected = w.link.has_value() && w.link->connected();
    row.has_report = w.has_report;
    row.report_age_us = w.has_report ? now_us - w.report_at_us : 0;
    row.sent_state = w.sent_state;
    row.retained_frames = w.retained.size();
    if (w.has_report) {
      row.wal_seq = w.report.wal_seq;
      row.replayed_frames = w.report.replayed_frames;
      row.exchange_items_sent = w.report.exchange_items_sent;
      row.completions_sent = w.report.completions_sent;
      for (const MetricSample& s : w.report.samples) {
        if (s.name != "streamworks_stage_duration_us" ||
            s.kind != MetricSample::Kind::kHistogram) {
          continue;
        }
        for (const auto& [key, value] : s.labels) {
          if (key != "stage") continue;
          WorkerStageSummary stage;
          stage.stage = value;
          stage.count = s.histogram.total_count();
          stage.sum_us = s.histogram.sum();
          stage.p50_us = s.histogram.Quantile(0.5);
          stage.p99_us = s.histogram.Quantile(0.99);
          row.stages.push_back(std::move(stage));
        }
      }
    }
    const bool stale =
        !row.has_report || row.report_age_us > snap.stale_threshold_us;
    if (!row.connected || stale) snap.healthy = false;
    snap.workers.push_back(std::move(row));
  }
  return snap;
}

ClusterObsSnapshot DistributedBackend::ObsSnapshot(bool refresh) {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  if (refresh) RefreshReports(PipelineMetrics::NowMicros());
  return BuildObsSnapshot(PipelineMetrics::NowMicros());
}

void DistributedBackend::ContributeClusterMetrics(MetricSnapshotBuilder* out) {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  RefreshReports(PipelineMetrics::NowMicros());
  out->EmitCounter("streamworks_epochs_total",
                   "Distributed ingest epochs committed by the coordinator.",
                   {}, epoch_ring_.total_pushed());
  static constexpr const char* kPhaseNames[] = {"batch", "apply", "relay",
                                                "barrier", "commit"};
  const AtomicHistogram* phase_hists[] = {&phase_batch_us_, &phase_apply_us_,
                                          &phase_relay_us_, &phase_barrier_us_,
                                          &phase_commit_us_};
  for (size_t i = 0; i < 5; ++i) {
    out->EmitHistogram(
        "streamworks_epoch_phase_us",
        "Coordinator time per epoch phase in microseconds.",
        {{"phase", kPhaseNames[i]}}, phase_hists[i]->Snapshot());
  }
  out->EmitHistogram("streamworks_epoch_relay_items",
                     "Exchange items moved per barrier relay round.", {},
                     relay_items_per_round_.Snapshot());
  // Federation: merge every worker's last report additively into the
  // scrape, so /metrics families are cluster-wide sums.
  for (const WorkerState& w : workers_) {
    if (!w.has_report) continue;
    for (const MetricSample& s : w.report.samples) out->EmitSample(s);
  }
}

}  // namespace streamworks
