#include "streamworks/cluster/worker.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "streamworks/common/json_writer.h"
#include "streamworks/common/str_util.h"
#include "streamworks/net/socket.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/planner/planner.h"

namespace streamworks {

namespace {

/// Exchange frames carry at most this many items so one drain of a hot
/// shard never approaches the frame-body cap.
constexpr size_t kMaxExchangeItemsPerFrame = 512;

constexpr int kHandshakeTimeoutMs = 10000;

bool IsReadTimeout(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         s.message() == "link read timed out";
}

std::string FrameLogDir(const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "frames").string();
}

}  // namespace

WorkerDaemon::WorkerDaemon(WorkerOptions options)
    : options_(std::move(options)) {}

Status WorkerDaemon::Start() {
  SW_ASSIGN_OR_RETURN(listen_fd_,
                      ListenTcp(options_.host, options_.port, /*backlog=*/4));
  SW_ASSIGN_OR_RETURN(port_, BoundTcpPort(listen_fd_.get()));
  if (!options_.data_dir.empty()) {
    SW_ASSIGN_OR_RETURN(log_, FrameLog::Open(FrameLogDir(options_.data_dir)));
  }
  // The worker's own series carry {role="worker"}: identical labels on
  // every shard, so federation's additive merge collapses them into one
  // cluster-wide series per family, disjoint from the coordinator's.
  edges_fed_ = registry_.RegisterCounter(
      "streamworks_edges_fed_total",
      "Stream edges admitted through the query service.",
      {{"role", "worker"}});
  pipeline_collector_token_ =
      RegisterPipelineCollector(&registry_, &pipeline_, {{"role", "worker"}});
  if (options_.http_port >= 0) {
    SW_ASSIGN_OR_RETURN(
        http_listen_fd_,
        ListenTcp(options_.host, options_.http_port, /*backlog=*/4));
    SW_ASSIGN_OR_RETURN(http_port_, BoundTcpPort(http_listen_fd_.get()));
    HttpHandler::Providers providers;
    providers.registry = &registry_;
    providers.pipeline = &pipeline_;
    providers.health = [this] { return RenderWorkerHealth(); };
    http_ = std::make_unique<HttpHandler>(std::move(providers));
  }
  return OkStatus();
}

Status WorkerDaemon::Serve(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_.get();
    pfds[0].events = POLLIN;
    nfds_t nfds = 1;
    if (http_listen_fd_.get() >= 0) {
      pfds[1].fd = http_listen_fd_.get();
      pfds[1].events = POLLIN;
      nfds = 2;
    }
    const int n = ::poll(pfds, nfds, options_.poll_interval_ms);
    if (n < 0 && errno != EINTR) {
      return Status::IoError(StrCat("poll: ", std::strerror(errno)));
    }
    if (n <= 0) continue;
    if (nfds == 2 && (pfds[1].revents & POLLIN) != 0) ServeHttpConnection();
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (cfd < 0) continue;
    auto link_or = PeerLink::Adopt(UniqueFd(cfd), /*duplex=*/false);
    if (!link_or.ok()) continue;
    PeerLink link = std::move(link_or).value();
    const Status session = ServeConnection(&link, stop);
    live_link_ = nullptr;
    if (!session.ok()) {
      if (fatal_) return session;
      // Link failures are expected (the coordinator reconnects after its
      // side recovers); the accept loop is the recovery path.
      std::fprintf(stderr, "worker[%d]: connection ended: %s\n",
                   shard_index_, session.ToString().c_str());
    }
  }
  return OkStatus();
}

Status WorkerDaemon::ServeConnection(PeerLink* link,
                                     const std::atomic<bool>& stop) {
  live_link_ = link;
  completion_send_error_ = OkStatus();
  SW_RETURN_IF_ERROR(Handshake(link));
  while (!stop.load(std::memory_order_relaxed)) {
    // Scrapes interleave with control frames: each loop turn drains any
    // pending HTTP connections before blocking on the link again.
    ServeHttpConnection();
    auto frame_or = link->ReadFrame(&interner_, options_.poll_interval_ms);
    if (!frame_or.ok()) {
      if (IsReadTimeout(frame_or.status())) continue;
      return frame_or.status();
    }
    const CtrlFrame& frame = frame_or.value();
    if (IsStateCtrlType(frame.type)) {
      CtrlRegisterAck ack;
      SW_RETURN_IF_ERROR(ApplyStateFrame(frame, &ack));
      SW_RETURN_IF_ERROR(FlushOutbox(link));
      SW_RETURN_IF_ERROR(completion_send_error_);
      if (frame.type == CtrlType::kRegister) {
        SW_RETURN_IF_ERROR(link->SendFrame(EncodeRegisterAckFrame(ack)));
      }
      continue;
    }
    switch (frame.type) {
      case CtrlType::kHello: {
        // A repeated Hello on a live link: answer with the current
        // cursor (the coordinator only sends one per connection, so
        // this is belt-and-braces).
        CtrlHelloAck ack;
        ack.applied_frames = applied_frames_;
        SW_RETURN_IF_ERROR(link->SendFrame(EncodeHelloAckFrame(ack)));
        break;
      }
      case CtrlType::kBarrier: {
        SW_RETURN_IF_ERROR(FlushOutbox(link));
        SW_RETURN_IF_ERROR(completion_send_error_);
        CtrlBarrierAck ack;
        ack.round = frame.barrier.round;
        ack.applied_frames = applied_frames_;
        SW_RETURN_IF_ERROR(link->SendFrame(EncodeBarrierAckFrame(ack)));
        break;
      }
      case CtrlType::kInfo:
        SW_RETURN_IF_ERROR(SendInfoAck(link, frame.info));
        break;
      case CtrlType::kStats:
        SW_RETURN_IF_ERROR(SendStatsAck(link));
        break;
      case CtrlType::kMetricsRequest:
        SW_RETURN_IF_ERROR(SendMetricsReport(link));
        break;
      default:
        // Acks and completions never flow coordinator -> worker; a stray
        // one is a peer bug, not worth killing the link over.
        break;
    }
  }
  return OkStatus();
}

Status WorkerDaemon::Configure(const CtrlHello& hello) {
  if (hello.protocol != kCtrlProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("protocol mismatch: coordinator speaks ", hello.protocol,
               ", worker speaks ", kCtrlProtocolVersion));
  }
  if (hello.num_shards <= 0 || hello.shard_index < 0 ||
      hello.shard_index >= hello.num_shards) {
    return Status::InvalidArgument(
        StrCat("bad shard identity ", hello.shard_index, "/",
               hello.num_shards));
  }
  if (configured_) {
    if (hello.num_shards != num_shards_ ||
        hello.shard_index != shard_index_ ||
        hello.partitioner_seed != partitioner_seed_) {
      return Status::FailedPrecondition(
          "coordinator reconnected with a different cluster identity");
    }
    return OkStatus();
  }
  num_shards_ = hello.num_shards;
  shard_index_ = hello.shard_index;
  partitioner_seed_ = hello.partitioner_seed;
  partitioner_ = std::make_unique<HashModuloPartitioner>(partitioner_seed_);
  // Default EngineOptions: statistics off, re-planning off — every worker
  // (and the single-engine reference deployment) plans queries from the
  // same uninformed estimator, so the replicated SJ-Trees agree on node
  // numbering and cut vertices across processes. The pipeline sink makes
  // engine stage timings scrapeable locally and federated upward.
  EngineOptions engine_options;
  engine_options.pipeline = &pipeline_;
  engine_ = std::make_unique<StreamWorksEngine>(&interner_, engine_options);
  ShardConfig config;
  config.shard_index = shard_index_;
  config.num_shards = num_shards_;
  config.partitioner = partitioner_.get();
  config.exchange = &exchange_;
  engine_->EnableShardMode(config);
  configured_ = true;
  return OkStatus();
}

Status WorkerDaemon::Handshake(PeerLink* link) {
  auto hello_or = link->ReadFrame(&interner_, kHandshakeTimeoutMs);
  SW_RETURN_IF_ERROR(hello_or.status());
  if (hello_or.value().type != CtrlType::kHello) {
    return Status::InvalidArgument("expected Hello as the first frame");
  }
  const CtrlHello hello = hello_or.value().hello;
  SW_RETURN_IF_ERROR(Configure(hello));

  if (!replayed_) {
    replayed_ = true;
    if (log_ != nullptr && log_->next_seq() > 0) {
      // Deferred startup replay: re-apply the durable state stream. The
      // engine regenerates the dead incarnation's outputs in the same
      // order; the coordinator's cursors say how many of each it already
      // received, so exactly the excess is (re)sent below.
      replaying_ = true;
      replay_exchange_skip_ = hello.exchange_items_received;
      replay_completion_skip_ = hello.completions_received;
      Status replay_status = OkStatus();
      const Status scanned = FrameLog::Replay(
          FrameLogDir(options_.data_dir), /*from_seq=*/0,
          [&](std::string_view record, uint64_t seq) {
            if (!replay_status.ok()) return;
            const CtrlDecodeResult decoded = DecodeCtrlFrame(
                record, kDefaultMaxFrameBodyBytes, &interner_);
            if (decoded.status != FrameDecodeStatus::kOk ||
                decoded.frame_bytes != record.size()) {
              replay_status = Status::DataLoss(
                  StrCat("undecodable frame log record ", seq, ": ",
                         decoded.error));
              return;
            }
            replay_status = ApplyStateFrame(decoded.frame, nullptr);
            if (replay_status.ok()) replay_status = FlushOutbox(nullptr);
            ++counters_.replayed_frames;
          });
      replaying_ = false;
      if (!scanned.ok() || !replay_status.ok()) {
        fatal_ = true;
        pending_out_.clear();
        return scanned.ok() ? replay_status : scanned;
      }
      applied_frames_ = log_->next_seq();
      counters_.frames_applied = applied_frames_;
    }
  }

  CtrlHelloAck ack;
  ack.applied_frames = applied_frames_;
  SW_RETURN_IF_ERROR(link->SendFrame(EncodeHelloAckFrame(ack)));
  // Outputs the crash swallowed: regenerated during replay, beyond the
  // coordinator's cursors, never delivered. Send them now, before any
  // new frames produce new outputs, to preserve per-stream order.
  for (const std::string& frame : pending_out_) {
    SW_RETURN_IF_ERROR(link->SendFrame(frame));
  }
  pending_out_.clear();
  return OkStatus();
}

std::string WorkerDaemon::ReencodeStateFrame(const CtrlFrame& frame) const {
  const LabelNameFn name = [this](LabelId id) -> std::string_view {
    return interner_.Name(id);
  };
  switch (frame.type) {
    case CtrlType::kRegister:
      return EncodeRegisterFrame(frame.reg);
    case CtrlType::kEndBackfill:
      return EncodeEndBackfillFrame();
    case CtrlType::kUnregister:
      return EncodeUnregisterFrame(frame.unregister);
    case CtrlType::kBatch:
      return EncodeBatchFrame(frame.batch, name);
    case CtrlType::kExchange:
      return EncodeExchangeFrame(frame.exchange, name);
    case CtrlType::kCommit:
      return EncodeCommitFrame(frame.commit);
    default:
      return std::string();
  }
}

Status WorkerDaemon::ApplyStateFrame(const CtrlFrame& frame,
                                     CtrlRegisterAck* register_ack_out) {
  if (log_ != nullptr && !replaying_) {
    // Log before apply: a crash after the append replays the frame; a
    // crash before it leaves the coordinator's resend buffer responsible.
    SW_RETURN_IF_ERROR(log_->Append(ReencodeStateFrame(frame)));
  }
  switch (frame.type) {
    case CtrlType::kRegister:
      SW_RETURN_IF_ERROR(ApplyRegister(frame.reg, register_ack_out));
      break;
    case CtrlType::kEndBackfill:
      engine_->set_suppress_completions(false);
      break;
    case CtrlType::kUnregister:
      // NotFound (already unregistered) is benign on the resend path.
      engine_->UnregisterQuery(frame.unregister.query_id).ok();
      break;
    case CtrlType::kBatch:
      SW_RETURN_IF_ERROR(ApplyBatch(frame.batch));
      break;
    case CtrlType::kExchange:
      SW_RETURN_IF_ERROR(ApplyExchange(frame.exchange));
      break;
    case CtrlType::kCommit:
      engine_->AdvanceWatermark(frame.commit.watermark);
      break;
    default:
      return Status::Internal("non-state frame reached ApplyStateFrame");
  }
  ++applied_frames_;
  counters_.frames_applied = applied_frames_;
  return OkStatus();
}

Status WorkerDaemon::ApplyRegister(const CtrlRegister& reg,
                                   CtrlRegisterAck* ack_out) {
  // Suppress from here until the coordinator's EndBackfill: both the
  // local backfill below and the backfill exchange items relayed from
  // peer shards re-derive matches that completed in the past.
  engine_->set_suppress_completions(true);
  QueryGraphBuilder builder(&interner_);
  for (const std::string& label : reg.vertex_labels) {
    builder.AddVertex(label);
  }
  for (const CtrlQueryEdge& edge : reg.edges) {
    builder.AddEdge(edge.src, edge.dst, edge.label);
  }
  auto built = builder.Build(reg.name);
  StatusOr<int> registered =
      built.ok()
          ? engine_->RegisterQuery(
                built.value(),
                static_cast<DecompositionStrategy>(reg.strategy), reg.window,
                [this](const CompleteMatch& cm) { OnCompletion(cm); })
          : StatusOr<int>(built.status());
  if (!registered.ok()) {
    // Validation failures are deterministic — every worker refuses the
    // same registration the same way, no engine id is consumed, and the
    // coordinator surfaces the error to the tenant. Unsuppress now: no
    // EndBackfill will follow a failed registration.
    engine_->set_suppress_completions(false);
    if (ack_out != nullptr) {
      ack_out->id = reg.expect_id;
      ack_out->ok = false;
      ack_out->error = registered.status().ToString();
    }
    return OkStatus();
  }
  if (registered.value() != reg.expect_id) {
    fatal_ = true;
    return Status::Internal(
        StrCat("registration id diverged: coordinator expects ",
               reg.expect_id, ", engine assigned ", registered.value(),
               " (state streams out of sync)"));
  }
  // Distributed backfill, this shard's share: re-anchor each stored edge
  // whose source vertex this shard owns (the same edge is stored on both
  // endpoint owners; anchoring only at the source owner runs it exactly
  // once group-wide — the live run_anchors discipline).
  const DynamicGraph& graph = engine_->graph();
  for (size_t i = 0; i < graph.num_stored_edges(); ++i) {
    const EdgeId id = graph.stored_edge_id(i);
    const EdgeRecord& record = graph.edge_record(id);
    if (partitioner_->OwnerShard(graph.external_id(record.src),
                                 num_shards_) != shard_index_) {
      continue;
    }
    engine_->BackfillQueryEdge(registered.value(), id);
  }
  if (ack_out != nullptr) {
    ack_out->id = registered.value();
    ack_out->ok = true;
  }
  return OkStatus();
}

Status WorkerDaemon::ApplyBatch(const CtrlBatch& batch) {
  edges_fed_->Increment(batch.edges.size());
  for (const CtrlShardEdge& e : batch.edges) {
    // Admission ran at the coordinator (group-consistent label and time
    // checks); a rejection here would mean divergent state streams, which
    // the engine counts rather than fails on.
    engine_->ProcessShardEdge(e.edge, e.global_id, e.run_anchors).ok();
  }
  return OkStatus();
}

Status WorkerDaemon::ApplyExchange(const CtrlExchange& exchange) {
  for (const CtrlExchangeItem& item : exchange.items) {
    engine_->HandleExchangeItem(item.item);
  }
  return OkStatus();
}

Status WorkerDaemon::FlushOutbox(PeerLink* link) {
  if (exchange_.empty()) return OkStatus();
  auto items = exchange_.Drain();
  std::vector<CtrlExchangeItem> out;
  out.reserve(items.size());
  for (auto& [dest, item] : items) {
    if (replaying_ && replay_exchange_skip_ > 0) {
      --replay_exchange_skip_;
      continue;
    }
    CtrlExchangeItem wire;
    wire.dest = dest;
    wire.item = std::move(item);
    out.push_back(std::move(wire));
  }
  counters_.exchange_items_sent += out.size();
  const LabelNameFn name = [this](LabelId id) -> std::string_view {
    return interner_.Name(id);
  };
  for (size_t begin = 0; begin < out.size();
       begin += kMaxExchangeItemsPerFrame) {
    const size_t end =
        std::min(out.size(), begin + kMaxExchangeItemsPerFrame);
    CtrlExchange chunk;
    chunk.items.assign(std::make_move_iterator(out.begin() +
                                               static_cast<ptrdiff_t>(begin)),
                       std::make_move_iterator(out.begin() +
                                               static_cast<ptrdiff_t>(end)));
    std::string frame = EncodeExchangeFrame(chunk, name);
    if (replaying_) {
      pending_out_.push_back(std::move(frame));
    } else {
      SW_RETURN_IF_ERROR(link->SendFrame(frame));
    }
  }
  return OkStatus();
}

void WorkerDaemon::OnCompletion(const CompleteMatch& cm) {
  if (replaying_ && replay_completion_skip_ > 0) {
    --replay_completion_skip_;
    return;
  }
  CtrlCompletion completion;
  completion.query_id = cm.query_id;
  completion.completed_at = cm.completed_at;
  completion.match = MatchExchange::ToWire(engine_->graph(), cm.match);
  const LabelNameFn name = [this](LabelId id) -> std::string_view {
    return interner_.Name(id);
  };
  std::string frame = EncodeCompletionFrame(completion, name);
  ++counters_.completions_sent;
  if (replaying_) {
    pending_out_.push_back(std::move(frame));
    return;
  }
  if (live_link_ != nullptr) {
    const Status sent = live_link_->SendFrame(frame);
    if (!sent.ok() && completion_send_error_.ok()) {
      completion_send_error_ = sent;
    }
  }
}

Status WorkerDaemon::SendInfoAck(PeerLink* link, const CtrlInfo& info) {
  CtrlInfoAck ack;
  if (engine_ != nullptr && engine_->has_query(info.query_id)) {
    const QueryRuntimeInfo qi = engine_->query_info(info.query_id);
    ack.ok = true;
    ack.name = qi.name;
    ack.window = qi.window;
    ack.completions = qi.completions;
    ack.live_partial_matches = qi.live_partial_matches;
    ack.peak_partial_matches = qi.peak_partial_matches;
    ack.nodes.reserve(qi.nodes.size());
    for (const SjNodeRuntime& node : qi.nodes) {
      CtrlNodeRuntime out;
      out.node = node.node;
      out.is_leaf = node.is_leaf;
      out.query_edges = node.query_edges;
      out.matches_inserted = node.matches_inserted;
      out.probes = node.probes;
      out.join_attempts = node.join_attempts;
      out.joins_succeeded = node.joins_succeeded;
      out.live_partial_matches = node.live_partial_matches;
      ack.nodes.push_back(out);
    }
  } else {
    ack.ok = false;
    ack.error = "unknown or unregistered query id";
  }
  return link->SendFrame(EncodeInfoAckFrame(ack));
}

Status WorkerDaemon::SendStatsAck(PeerLink* link) {
  CtrlStatsAck ack;
  if (engine_ != nullptr) {
    ack.retained_edges = engine_->graph().num_stored_edges();
    ack.retained_vertices = engine_->graph().num_vertices();
    ack.evicted_edges = engine_->graph().num_evicted_edges();
    ack.edges_processed = engine_->metrics().edges_processed;
    ack.completions = engine_->metrics().completions;
    ack.live_partial_matches = engine_->total_live_partial_matches();
    ack.exchange = exchange_.counters();
  }
  return link->SendFrame(EncodeStatsAckFrame(ack));
}

Status WorkerDaemon::SendMetricsReport(PeerLink* link) {
  CtrlMetricsReport report;
  report.wal_seq = log_ != nullptr ? log_->next_seq() : applied_frames_;
  report.replayed_frames = counters_.replayed_frames;
  report.exchange_items_sent = counters_.exchange_items_sent;
  report.completions_sent = counters_.completions_sent;
  report.samples = registry_.ExportSamples();
  return link->SendFrame(EncodeMetricsReportFrame(report));
}

std::string WorkerDaemon::RenderWorkerHealth() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String(fatal_ ? "degraded" : "ok");
  w.Key("role");
  w.String("worker");
  w.Key("shard");
  w.Int(shard_index_);
  w.Key("configured");
  w.Bool(configured_);
  w.Key("frames_applied");
  w.Uint(applied_frames_);
  w.Key("wal_seq");
  w.Uint(log_ != nullptr ? log_->next_seq() : applied_frames_);
  w.Key("replayed_frames");
  w.Uint(counters_.replayed_frames);
  w.Key("coordinator_connected");
  w.Bool(live_link_ != nullptr);
  w.EndObject();
  std::string out = w.TakeString();
  out.push_back('\n');
  return out;
}

void WorkerDaemon::ServeHttpConnection() {
  if (http_listen_fd_.get() < 0) return;
  while (true) {
    struct pollfd pfd {};
    pfd.fd = http_listen_fd_.get();
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) return;
    const int cfd = ::accept(http_listen_fd_.get(), nullptr, nullptr);
    if (cfd < 0) return;
    const UniqueFd conn(cfd);
    // Bounded single-request read: a slow or bogus scraper is dropped
    // rather than allowed to stall the (single) serve thread.
    std::string buf;
    HttpRequest request;
    size_t consumed = 0;
    HttpParseResult parsed = HttpParseResult::kNeedMore;
    const uint64_t deadline_us = PipelineMetrics::NowMicros() + 2'000'000;
    while (parsed == HttpParseResult::kNeedMore && buf.size() < 16 * 1024 &&
           PipelineMetrics::NowMicros() < deadline_us) {
      struct pollfd rp {};
      rp.fd = cfd;
      rp.events = POLLIN;
      if (::poll(&rp, 1, 100) <= 0) continue;
      char chunk[1024];
      const ssize_t got = ::recv(cfd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      buf.append(chunk, static_cast<size_t>(got));
      parsed = ParseHttpRequest(buf, &request, &consumed);
    }
    HttpResponse response;
    if (parsed == HttpParseResult::kComplete) {
      response = http_->Handle(request);
    } else if (parsed == HttpParseResult::kBad) {
      response.status = 400;
      response.body = "bad request\n";
    } else {
      continue;  // incomplete head: nothing useful to answer
    }
    const std::string wire = EncodeHttpResponse(response);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t sent =
          ::send(cfd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (sent <= 0) break;
      off += static_cast<size_t>(sent);
    }
  }
}

}  // namespace streamworks
