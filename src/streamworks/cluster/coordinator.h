#ifndef STREAMWORKS_CLUSTER_COORDINATOR_H_
#define STREAMWORKS_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/partition.h"
#include "streamworks/net/peer_link.h"
#include "streamworks/obs/cluster_snapshot.h"
#include "streamworks/obs/epoch_trace.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/backend.h"
#include "streamworks/stream/cluster_wire.h"

namespace streamworks {

struct DistributedBackendOptions {
  /// Worker endpoints as "host:port", one per shard; shard index = list
  /// position. The partition function is OwnerShard(v, workers.size()).
  std::vector<std::string> workers;
  uint64_t partitioner_seed = 0;
  /// Edges per ingest epoch: the batch/barrier/commit cadence, mirroring
  /// the in-process group's epoch size.
  int epoch_edges = 1024;
  /// Ingest backpressure bound: Feed blocks once this many edges are
  /// queued ahead of the pump.
  size_t max_pending_edges = 32768;
  /// How long Start waits for each worker to come up.
  int connect_deadline_ms = 10000;
  /// How long a mid-stream reconnect retries before the cluster op fails
  /// — the recovery budget for a crashed worker to restart and replay.
  int reconnect_deadline_ms = 30000;
  /// Per-frame wait while expecting an ack. Generous: a worker may be
  /// replaying a large log or backfilling a large window.
  int ack_timeout_ms = 60000;

  // Observability ------------------------------------------------------------

  /// When set, the coordinator registers a federation collector on this
  /// registry: every scrape pulls each worker's MetricsReport (subject to
  /// metrics_cache_ms) and merges the samples additively into the
  /// coordinator's own families, so /metrics is the whole cluster.
  MetricRegistry* registry = nullptr;
  /// When set, coordinator-side barrier/relay time is recorded as
  /// kBarrierWait / kExchangeRelay pipeline stages.
  PipelineMetrics* pipeline = nullptr;
  /// A cached worker report younger than this is served without a wire
  /// round-trip, bounding scrape-driven control traffic.
  int metrics_cache_ms = 1000;
  /// Per-worker wait for a MetricsReport. Deliberately much shorter than
  /// ack_timeout_ms: a scrape must not hang on a dead worker; the link is
  /// closed on expiry and the pump's normal recovery takes over.
  int metrics_timeout_ms = 5000;
  /// /healthz degrades when a connected worker's last report is older
  /// than this (a wedged worker that still holds its socket open).
  int stale_report_threshold_ms = 15000;
  /// Epoch trace ring capacity (entries retained for /epochs.json).
  size_t epoch_trace_capacity = 256;
};

/// QueryBackend that runs every shard in its own worker daemon process,
/// speaking the cluster control wire. This is the in-process
/// ParallelEngineGroup's kPartitionedData mode lifted across process
/// boundaries: the coordinator is the ingest router, exchange relay (star
/// topology), barrier master, watermark committer, and completion
/// delivery point — the service layer on top of it is unchanged.
///
/// Epochs: Feed/FeedBatch only enqueue (bounded, blocking when full); a
/// pump thread drains up to epoch_edges at a time, routes each admitted
/// edge to its endpoint-owner worker(s) as a Batch, then runs a barrier
/// fixpoint — barrier every worker, relay the exchange items their acks
/// flushed, repeat until a round relays nothing — and commits the
/// watermark. Control operations (Register/Info/...) drain pending edges
/// first, so they observe everything fed before them.
///
/// Exchange relaying never holds the service's control mutex: the pump
/// owns cluster_mu_ while it routes, so a stalled worker backpressures
/// ingest (by design) but never wedges unrelated service sessions — the
/// service only blocks when it explicitly asks this backend to quiesce.
///
/// Fault tolerance (worker crash, kill -9 included): every state frame a
/// worker has not durably acknowledged is retained; on link failure the
/// coordinator reconnects (retrying up to reconnect_deadline_ms, covering
/// a daemon restart), sends a Hello carrying how many exchange items and
/// completions it has ever received from that shard, learns from the
/// HelloAck how many frames survived in the worker's log, and resends the
/// rest. The worker replays its log, skipping the outputs the cursors say
/// were already delivered. Exactly-once, both directions. The coordinator
/// itself is not replicated — it is the deployment's root, like the
/// single-process service it replaces.
class DistributedBackend : public QueryBackend {
 public:
  /// `interner` is the service's label interner (control-thread owned);
  /// queries and fed edges arrive in its id space.
  DistributedBackend(DistributedBackendOptions options, Interner* interner);
  ~DistributedBackend() override;

  DistributedBackend(const DistributedBackend&) = delete;
  DistributedBackend& operator=(const DistributedBackend&) = delete;

  /// Connects and handshakes every worker (fresh workers only — a worker
  /// holding state from an earlier run is refused), then starts the pump.
  Status Start();

  /// Stops the pump and closes all links. Pending un-pumped edges are
  /// dropped; call Flush() first for a clean drain. Idempotent.
  void Stop();

  // QueryBackend surface -----------------------------------------------------
  StatusOr<int> Register(const QueryGraph& query, DecompositionStrategy strategy,
                         Timestamp window, MatchCallback callback) override;
  Status Unregister(int query_id) override;
  StatusOr<QueryRuntimeInfo> Info(int query_id) override;
  Status Feed(const StreamEdge& edge) override;
  Status FeedBatch(const EdgeBatch& batch, size_t* rejected_out) override;
  void Flush() override;
  std::vector<ShardLoadSnapshot> ShardLoads() override;
  void SetSuppressCompletions(bool suppress) override {
    suppress_.store(suppress, std::memory_order_relaxed);
  }

  /// Edges refused by group admission (label clash / stale timestamp),
  /// mirroring the in-process group's aggregate counter.
  uint64_t rejected_edges() const {
    return rejected_edges_.load(std::memory_order_relaxed);
  }

  // Cluster observability ----------------------------------------------------

  /// One-pane-of-glass view for /cluster.json and /healthz: per-worker
  /// link state, report freshness, recovery cursors, and stage digests.
  /// When `refresh` is set, stale worker reports are re-pulled first
  /// (bounded by metrics_timeout_ms per stale worker). Takes cluster_mu_.
  ClusterObsSnapshot ObsSnapshot(bool refresh);

  /// The epoch trace ring's surviving entries, oldest first (lock-free).
  std::vector<EpochTraceEntry> EpochTrace() const {
    return epoch_ring_.Snapshot();
  }
  /// Lifetime epoch count (ring entries may have been lapped).
  uint64_t epochs_completed() const { return epoch_ring_.total_pushed(); }

 private:
  /// Everything the coordinator tracks per worker. `sent_state` counts
  /// state frames ever sent (the worker's log seq converges to it);
  /// `retained` holds the un-acknowledged tail, frames
  /// [pruned_base, sent_state), for resend after a crash.
  struct WorkerState {
    std::string host;
    int port = 0;
    std::optional<PeerLink> link;
    uint64_t sent_state = 0;
    uint64_t pruned_base = 0;
    std::deque<std::string> retained;
    /// Recovery cursors sent in Hello (see CtrlHello).
    uint64_t exchange_received = 0;
    uint64_t completions_received = 0;
    /// Federation cache: the worker's last MetricsReport and when it
    /// arrived. Served until metrics_cache_ms old, then re-pulled.
    CtrlMetricsReport report;
    bool has_report = false;
    uint64_t report_at_us = 0;
  };

  struct QueryState {
    QueryGraph query;
    MatchCallback callback;
  };

  // All private methods below require cluster_mu_ held.

  /// Retains `frame` for `w` and sends it, reconnecting on failure.
  Status SendStateFrame(WorkerState* w, std::string frame);
  /// Reconnect + Hello/HelloAck + resend of the retained tail.
  Status RecoverLink(WorkerState* w);
  /// Handles one worker->coordinator frame that is not the ack currently
  /// being awaited: exchange relays and completion delivery.
  Status HandleWorkerFrame(WorkerState* from, const CtrlFrame& frame);
  /// Reads frames from `w` until one of `type` arrives, relaying
  /// everything else through HandleWorkerFrame.
  StatusOr<CtrlFrame> AwaitFrame(WorkerState* w, CtrlType type);
  /// Per-epoch phase decomposition accumulated by BarrierFixpoint for the
  /// epoch trace. apply is round 1's ack wait (dominated by workers
  /// applying the batch); relay is exchange forwarding time; barrier is
  /// the remaining rounds' settle time.
  struct EpochPhases {
    uint64_t apply_us = 0;
    uint64_t relay_us = 0;
    uint64_t barrier_us = 0;
    uint64_t commit_us = 0;
    uint64_t relay_rounds = 0;
    uint64_t relayed_items = 0;
  };

  /// Barriers every worker and relays flushed exchange traffic until a
  /// round moves nothing, then commits the watermark if it advanced.
  Status BarrierFixpoint(EpochPhases* phases = nullptr);
  Status AwaitBarrierAck(WorkerState* w, uint32_t round);
  /// Requests and caches a fresh MetricsReport from `w`. On failure the
  /// link is closed (never RecoverLink here — a scrape must not block on
  /// the 30s reconnect budget) and the stale cache entry is kept.
  Status PullMetricsReport(WorkerState* w);
  /// Re-pulls every worker whose cached report is older than
  /// metrics_cache_ms. Failures are absorbed into link/freshness state.
  void RefreshReports(uint64_t now_us);
  /// Builds the /cluster.json snapshot from cached state; no wire IO.
  ClusterObsSnapshot BuildObsSnapshot(uint64_t now_us);
  /// Federation collector body: refresh + merge worker samples and the
  /// coordinator's epoch-phase families into a scrape.
  void ContributeClusterMetrics(MetricSnapshotBuilder* out);
  /// Routes up to epoch_edges pending edges into per-worker batches and
  /// runs the epoch's barrier + commit. Returns edges consumed.
  StatusOr<size_t> RunEpoch();
  /// RunEpoch until the pending queue is empty (control ops call this so
  /// they observe all prior ingest).
  Status DrainPending();
  /// Admission mirror of ParallelEngineGroup::AdmitPartitionedEdge —
  /// group-consistent label/time validation, done once here so every
  /// shard's vertex records agree.
  bool AdmitEdge(const StreamEdge& edge);

  /// Copies newly interned names out of the service interner into the
  /// thread-safe cache the pump's encoders read. Control-thread only.
  void SyncLabelNames();
  std::string_view CachedLabelName(LabelId id);

  void PumpLoop();

  const DistributedBackendOptions options_;
  Interner* interner_;  ///< Service interner; control-thread access only.

  /// Append-only mirror of the service interner's names. A deque so
  /// grown-in elements never move: CachedLabelName hands out views that
  /// stay valid without holding label_mu_ across an encode.
  std::mutex label_mu_;
  std::deque<std::string> label_names_;

  /// Serialises all cluster wire traffic and worker/query state. Held by
  /// the control thread during control ops and by the pump per epoch.
  std::mutex cluster_mu_;
  std::vector<WorkerState> workers_;
  std::map<int, QueryState> queries_;
  int next_query_id_ = 0;
  HashModuloPartitioner partitioner_;

  /// Decode/relay id space for worker->coordinator frames; disjoint from
  /// the service interner (labels cross between them as strings).
  Interner wire_interner_;
  /// Vertices-only graph backing Localize of delivered completions:
  /// coordinator-side external-id resolution without storing any edges.
  DynamicGraph coord_graph_;

  // Group ingest state (the in-process group's fields, mirrored).
  std::unordered_map<ExternalVertexId, LabelId> admitted_vertex_labels_;
  EdgeId next_global_edge_id_ = 0;
  Timestamp group_watermark_ = -1;
  Timestamp last_broadcast_watermark_ = -1;
  uint32_t barrier_round_ = 0;
  uint64_t relays_total_ = 0;

  // Observability state (epoch ring is lock-free; the histograms are
  // atomic; everything else under cluster_mu_).
  EpochTraceRing epoch_ring_;
  int federation_token_ = -1;  ///< Registry collector token, -1 if none.
  /// Cumulative exchange-forwarding wall time and items, accumulated by
  /// HandleWorkerFrame; BarrierFixpoint differences them per round.
  uint64_t relay_forward_us_ = 0;
  AtomicHistogram phase_batch_us_;
  AtomicHistogram phase_apply_us_;
  AtomicHistogram phase_relay_us_;
  AtomicHistogram phase_barrier_us_;
  AtomicHistogram phase_commit_us_;
  AtomicHistogram relay_items_per_round_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;  ///< Pump wakeup: work or stop.
  std::condition_variable space_cv_;    ///< Feed wakeup: queue has room.
  std::deque<StreamEdge> pending_;
  bool stop_ = false;

  std::thread pump_;
  bool started_ = false;
  std::atomic<bool> suppress_{false};
  std::atomic<uint64_t> rejected_edges_{0};
};

/// Splits "host:port". Exposed for the demo binary's flag parsing.
StatusOr<std::pair<std::string, int>> ParseHostPort(const std::string& spec);

}  // namespace streamworks

#endif  // STREAMWORKS_CLUSTER_COORDINATOR_H_
