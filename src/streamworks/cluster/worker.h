#ifndef STREAMWORKS_CLUSTER_WORKER_H_
#define STREAMWORKS_CLUSTER_WORKER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/unique_fd.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/partition.h"
#include "streamworks/net/peer_link.h"
#include "streamworks/obs/http_endpoint.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/persist/frame_log.h"
#include "streamworks/sjtree/exchange.h"
#include "streamworks/stream/cluster_wire.h"

namespace streamworks {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the bound port after Start).
  /// Durability root; the frame log lives in <data_dir>/frames. Empty =
  /// in-memory only (a crashed worker cannot recover its shard).
  std::string data_dir;
  /// Read-poll granularity: how often the serve loop re-checks its stop
  /// flag while idle.
  int poll_interval_ms = 250;
  /// Local observability endpoint: -1 = none, 0 = ephemeral (read
  /// http_port() after Start). Serves /metrics, /trace.json and /healthz
  /// from the daemon's serve thread — same single-threaded discipline as
  /// the control link, so a scrape never races an apply.
  int http_port = -1;
};

/// Aggregate counters one worker daemon exposes to tests.
struct WorkerCounters {
  uint64_t frames_applied = 0;     ///< State frames applied (== log seq).
  uint64_t exchange_items_sent = 0;
  uint64_t completions_sent = 0;
  uint64_t replayed_frames = 0;    ///< State frames re-applied at startup.
};

/// One shard of a distributed StreamWorks cluster, run as a daemon: a
/// single-threaded server owning one StreamWorksEngine in shard mode, fed
/// control frames by a coordinator over a PeerLink.
///
/// The daemon speaks exactly the in-process ParallelEngineGroup's
/// kPartitionedData protocol, lifted onto the wire: the coordinator routes
/// each ingested edge to its endpoint owners (kBatch), forwarded partial
/// matches flow back up and get relayed (kExchange — star topology, no
/// worker mesh), epoch barriers bound in-flight work (kBarrier/kBarrierAck)
/// and watermark commits drive expiry (kCommit).
///
/// Durability and exactly-once recovery: every *state-bearing* frame
/// (IsStateCtrlType) is appended to a FrameLog before it is applied, in
/// arrival order. After a crash (kill -9 included — the log needs no
/// fsync to survive process death) the restarted daemon defers replay
/// until the coordinator's Hello arrives carrying two cursors: how many
/// exchange items (K) and completions (C) the coordinator had received
/// from this shard. Replay re-applies the whole log; because the engine is
/// deterministic, it regenerates the exact output streams the dead
/// incarnation produced, and the daemon discards the first K / C of them
/// — already delivered — and sends only the excess. It then reports its
/// durable frame count (M) in HelloAck, and the coordinator resends the
/// state frames [M, S) the crash swallowed. Net effect: every frame is
/// applied exactly once, every output delivered exactly once, with no
/// quiescence requirement on when the kill lands.
///
/// Single-threaded by design: one connection (the coordinator's), one
/// engine, no locks. The accept loop outlives connections so a
/// coordinator may reconnect after a link failure.
class WorkerDaemon {
 public:
  explicit WorkerDaemon(WorkerOptions options);
  ~WorkerDaemon() = default;

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  /// Binds and listens (resolving port 0); opens the frame log when a
  /// data dir is configured, so a second daemon on the same dir fails
  /// here, not mid-handshake.
  Status Start();

  /// Bound TCP port (valid after Start).
  int port() const { return port_; }

  /// Bound HTTP port (valid after Start; -1 when the endpoint is off).
  int http_port() const { return http_port_; }

  /// The daemon's metric registry (local /metrics; snapshotted into
  /// MetricsReport frames for coordinator federation).
  MetricRegistry* registry() { return &registry_; }

  /// Serves until `stop` becomes true: accept one coordinator connection,
  /// handshake, dispatch frames; on link failure, go back to accepting.
  /// Returns the first non-recoverable error (log corruption, engine
  /// invariant breach), or OK on a clean stop.
  Status Serve(const std::atomic<bool>& stop);

  const WorkerCounters& counters() const { return counters_; }

 private:
  /// One coordinator connection: handshake, then dispatch until link
  /// failure or stop.
  Status ServeConnection(PeerLink* link, const std::atomic<bool>& stop);

  /// Handshake on a fresh connection: read Hello, configure the engine on
  /// first contact, replay the frame log (once per process, skipping the
  /// coordinator's K/C output cursors), send HelloAck + excess outputs.
  Status Handshake(PeerLink* link);

  /// Configures engine + partitioner from the Hello (first contact) or
  /// validates consistency (reconnect).
  Status Configure(const CtrlHello& hello);

  /// Logs (when durable) and applies one state frame; increments
  /// frames_applied. `register_ack_out`, when non-null, receives the ack
  /// for a kRegister frame (replay passes null — no one is listening).
  Status ApplyStateFrame(const CtrlFrame& frame,
                         CtrlRegisterAck* register_ack_out);

  Status ApplyRegister(const CtrlRegister& reg, CtrlRegisterAck* ack_out);
  Status ApplyBatch(const CtrlBatch& batch);
  Status ApplyExchange(const CtrlExchange& exchange);

  /// Drains the engine's exchange outbox into kExchange frames for the
  /// coordinator (chunked), honouring the replay skip cursor. In replay
  /// the frames buffer into pending_out_; live, they send immediately.
  Status FlushOutbox(PeerLink* link);

  /// Engine completion callback target: encode + send (or buffer/skip
  /// during replay).
  void OnCompletion(const CompleteMatch& cm);

  /// Re-encodes `frame` exactly as the wire carried it, for the log.
  std::string ReencodeStateFrame(const CtrlFrame& frame) const;

  Status SendInfoAck(PeerLink* link, const CtrlInfo& info);
  Status SendStatsAck(PeerLink* link);
  /// Snapshots the registry + cursors into a CRC'd MetricsReport frame.
  Status SendMetricsReport(PeerLink* link);

  /// Accepts and answers every pending HTTP scrape (non-blocking poll,
  /// one request per connection). Runs inline on the serve thread —
  /// between accepts while idle, between control frames while a
  /// coordinator session is live — so it reads engine state safely.
  void ServeHttpConnection();
  /// The worker's /healthz document.
  std::string RenderWorkerHealth() const;

  WorkerOptions options_;
  UniqueFd listen_fd_;
  int port_ = -1;
  UniqueFd http_listen_fd_;
  int http_port_ = -1;

  /// Local observability: per-worker registry + pipeline stage metrics,
  /// scraped directly over HTTP and federated through MetricsReport.
  MetricRegistry registry_;
  PipelineMetrics pipeline_;
  MetricCounter* edges_fed_ = nullptr;  ///< {role="worker"} ingest counter.
  int pipeline_collector_token_ = -1;
  std::unique_ptr<HttpHandler> http_;

  Interner interner_;
  std::unique_ptr<HashModuloPartitioner> partitioner_;
  MatchExchange exchange_;
  std::unique_ptr<StreamWorksEngine> engine_;
  std::unique_ptr<FrameLog> log_;

  int shard_index_ = -1;
  int num_shards_ = 0;
  uint64_t partitioner_seed_ = 0;
  bool configured_ = false;
  bool replayed_ = false;

  /// Live link, only valid inside Serve's per-connection scope; kept as a
  /// member so OnCompletion (called from inside engine applies) can send.
  PeerLink* live_link_ = nullptr;

  /// Replay state: while set, outputs are counted against the skip
  /// cursors and the excess buffers into pending_out_ instead of sending.
  bool replaying_ = false;
  uint64_t replay_exchange_skip_ = 0;
  uint64_t replay_completion_skip_ = 0;
  std::vector<std::string> pending_out_;

  uint64_t applied_frames_ = 0;
  WorkerCounters counters_;
  Status completion_send_error_;  ///< First send failure inside a callback.
  /// Set when an error must end Serve (log corruption, engine-invariant
  /// breach) rather than just this connection.
  bool fatal_ = false;
};

}  // namespace streamworks

#endif  // STREAMWORKS_CLUSTER_WORKER_H_
