#include "streamworks/stream/batching.h"

#include "streamworks/common/logging.h"

namespace streamworks {

std::vector<EdgeBatch> BatchByTick(const std::vector<StreamEdge>& edges) {
  std::vector<EdgeBatch> batches;
  for (const StreamEdge& e : edges) {
    if (batches.empty() || batches.back().back().ts != e.ts) {
      batches.emplace_back();
    }
    batches.back().push_back(e);
  }
  return batches;
}

std::vector<EdgeBatch> BatchBySize(const std::vector<StreamEdge>& edges,
                                   size_t batch_size) {
  SW_CHECK_GT(batch_size, 0u);
  std::vector<EdgeBatch> batches;
  for (size_t i = 0; i < edges.size(); i += batch_size) {
    const size_t end = std::min(edges.size(), i + batch_size);
    batches.emplace_back(edges.begin() + static_cast<ptrdiff_t>(i),
                         edges.begin() + static_cast<ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace streamworks
