#include "streamworks/stream/cluster_wire.h"

#include <array>
#include <bit>
#include <cstring>
#include <limits>

#include "streamworks/common/binio.h"
#include "streamworks/common/str_util.h"
#include "streamworks/persist/crc32.h"

namespace streamworks {

namespace {

// --- Encode helpers ----------------------------------------------------------

/// Wraps a finished body (type byte + payload) into a framed message.
std::string FinishFrame(std::string body) {
  std::string frame;
  frame.reserve(kCtrlFrameHeaderBytes + body.size());
  frame.append(kCtrlFrameMagic, sizeof(kCtrlFrameMagic));
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

std::string BodyFor(CtrlType type) {
  std::string body;
  body.push_back(static_cast<char>(type));
  return body;
}

void PutString(std::string* out, std::string_view s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

/// First-seen-order label table over a frame's label ids (FEEDB's scheme:
/// a handful of distinct labels per frame, so linear scan beats a map).
class LabelTable {
 public:
  explicit LabelTable(const LabelNameFn& name) : name_(name) {}

  uint32_t IndexOf(LabelId id) {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) return static_cast<uint32_t>(i);
    }
    ids_.push_back(id);
    return static_cast<uint32_t>(ids_.size() - 1);
  }

  void Encode(std::string* out) const {
    PutU32(out, static_cast<uint32_t>(ids_.size()));
    for (LabelId id : ids_) PutString(out, name_(id));
  }

 private:
  const LabelNameFn& name_;
  std::vector<LabelId> ids_;
};

void EncodeWireMatch(std::string* out, const WireMatch& match,
                     LabelTable* table) {
  out->push_back(static_cast<char>(match.vertices.size()));
  for (const WireVertexBinding& v : match.vertices) {
    out->push_back(static_cast<char>(v.qv));
    PutU64(out, v.vertex);
    PutU32(out, table->IndexOf(v.label));
  }
  out->push_back(static_cast<char>(match.edges.size()));
  for (const WireEdgeBinding& e : match.edges) {
    out->push_back(static_cast<char>(e.qe));
    PutU64(out, e.edge);
    PutI64(out, e.ts);
  }
}

// --- Decode helpers ----------------------------------------------------------

/// Bounds-checked little-endian reader over one frame body. Every getter
/// fails closed: once `ok` drops the cursor stops moving and returns
/// zeros, so decoders can read a whole payload and check ok once.
struct Reader {
  const char* p;
  const char* end;
  bool ok = true;
  std::string err;

  Reader(const char* begin, const char* stop) : p(begin), end(stop) {}

  bool Need(size_t n, std::string_view what) {
    if (!ok) return false;
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
      err = StrCat("truncated ", what);
      return false;
    }
    return true;
  }

  void Fail(std::string_view why) {
    if (ok) {
      ok = false;
      err = std::string(why);
    }
  }

  uint8_t U8(std::string_view what) {
    if (!Need(1, what)) return 0;
    return static_cast<uint8_t>(*p++);
  }
  uint16_t U16(std::string_view what) {
    if (!Need(2, what)) return 0;
    const uint16_t v = GetU16(p);
    p += 2;
    return v;
  }
  uint32_t U32(std::string_view what) {
    if (!Need(4, what)) return 0;
    const uint32_t v = GetU32(p);
    p += 4;
    return v;
  }
  uint64_t U64(std::string_view what) {
    if (!Need(8, what)) return 0;
    const uint64_t v = GetU64(p);
    p += 8;
    return v;
  }
  int32_t I32(std::string_view what) {
    return static_cast<int32_t>(U32(what));
  }
  int64_t I64(std::string_view what) {
    return static_cast<int64_t>(U64(what));
  }
  std::string_view Bytes(size_t n, std::string_view what) {
    if (!Need(n, what)) return {};
    const std::string_view v(p, n);
    p += n;
    return v;
  }
  std::string String(std::string_view what) {
    const uint16_t len = U16(what);
    return std::string(Bytes(len, what));
  }
  size_t remaining() const { return static_cast<size_t>(end - p); }
};

/// Decodes a frame-local label table, interning each entry once.
std::vector<LabelId> DecodeLabelTable(Reader* r, Interner* interner) {
  std::vector<LabelId> labels;
  const uint32_t n = r->U32("string-table count");
  if (!r->ok) return labels;
  // Each entry costs at least its u16 length, so a count beyond
  // remaining/2 is a lie — reject before reserving.
  if (n > r->remaining() / 2) {
    r->Fail("string-table count exceeds body");
    return labels;
  }
  labels.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint16_t len = r->U16("string length");
    const std::string_view bytes = r->Bytes(len, "string bytes");
    if (!r->ok) return labels;
    labels.push_back(interner->Intern(bytes));
  }
  return labels;
}

LabelId TableLabel(Reader* r, const std::vector<LabelId>& table,
                   uint32_t index) {
  if (index >= table.size()) {
    r->Fail("label index out of string-table range");
    return kInvalidLabelId;
  }
  return table[index];
}

WireMatch DecodeWireMatch(Reader* r, const std::vector<LabelId>& table) {
  WireMatch match;
  const uint8_t nv = r->U8("match vertex count");
  if (nv > kMaxQuerySize) {
    r->Fail("match vertex count exceeds the query-size bound");
    return match;
  }
  match.vertices.reserve(nv);
  for (uint8_t i = 0; i < nv && r->ok; ++i) {
    WireVertexBinding v;
    v.qv = r->U8("vertex binding qv");
    v.vertex = r->U64("vertex binding external id");
    v.label = TableLabel(r, table, r->U32("vertex binding label"));
    if (v.qv >= kMaxQuerySize) r->Fail("vertex binding qv out of range");
    match.vertices.push_back(v);
  }
  const uint8_t ne = r->U8("match edge count");
  if (ne > kMaxQuerySize) {
    r->Fail("match edge count exceeds the query-size bound");
    return match;
  }
  match.edges.reserve(ne);
  for (uint8_t i = 0; i < ne && r->ok; ++i) {
    WireEdgeBinding e;
    e.qe = r->U8("edge binding qe");
    e.edge = r->U64("edge binding id");
    e.ts = r->I64("edge binding ts");
    if (e.qe >= kMaxQuerySize) r->Fail("edge binding qe out of range");
    match.edges.push_back(e);
  }
  return match;
}

constexpr size_t kBatchRecordBytes = 8 + 8 + 8 + 4 + 4 + 4 + 8 + 1;

void DecodeBody(Reader* r, Interner* interner, CtrlFrame* frame) {
  switch (frame->type) {
    case CtrlType::kHello: {
      CtrlHello& h = frame->hello;
      h.protocol = r->U32("hello protocol");
      h.num_shards = r->I32("hello num_shards");
      h.shard_index = r->I32("hello shard_index");
      h.partitioner_seed = r->U64("hello seed");
      h.exchange_items_received = r->U64("hello exchange cursor");
      h.completions_received = r->U64("hello completion cursor");
      break;
    }
    case CtrlType::kHelloAck:
      frame->hello_ack.applied_frames = r->U64("hello-ack applied");
      break;
    case CtrlType::kRegister: {
      CtrlRegister& reg = frame->reg;
      reg.expect_id = r->I32("register id");
      reg.strategy = r->U8("register strategy");
      reg.window = r->I64("register window");
      reg.name = r->String("register name");
      const uint8_t nv = r->U8("register vertex count");
      const uint8_t ne = r->U8("register edge count");
      if (nv > kMaxQuerySize || ne > kMaxQuerySize) {
        r->Fail("register query exceeds the query-size bound");
        return;
      }
      reg.vertex_labels.reserve(nv);
      for (uint8_t i = 0; i < nv && r->ok; ++i) {
        reg.vertex_labels.push_back(r->String("register vertex label"));
      }
      reg.edges.reserve(ne);
      for (uint8_t i = 0; i < ne && r->ok; ++i) {
        CtrlQueryEdge e;
        e.src = r->U8("register edge src");
        e.dst = r->U8("register edge dst");
        e.label = r->String("register edge label");
        if (e.src >= nv || e.dst >= nv) {
          r->Fail("register edge endpoint out of range");
          return;
        }
        reg.edges.push_back(std::move(e));
      }
      break;
    }
    case CtrlType::kRegisterAck: {
      frame->register_ack.id = r->I32("register-ack id");
      frame->register_ack.ok = r->U8("register-ack ok") != 0;
      frame->register_ack.error = r->String("register-ack error");
      break;
    }
    case CtrlType::kEndBackfill:
      break;
    case CtrlType::kUnregister:
      frame->unregister.query_id = r->I32("unregister id");
      break;
    case CtrlType::kBatch: {
      const std::vector<LabelId> table = DecodeLabelTable(r, interner);
      const uint32_t n = r->U32("batch edge count");
      if (!r->ok) return;
      if (r->remaining() != n * kBatchRecordBytes) {
        r->Fail("body length does not match batch edge records");
        return;
      }
      frame->batch.edges.reserve(n);
      for (uint32_t i = 0; i < n && r->ok; ++i) {
        CtrlShardEdge se;
        se.global_id = r->U64("batch edge gid");
        se.edge.src = r->U64("batch edge src");
        se.edge.dst = r->U64("batch edge dst");
        se.edge.src_label = TableLabel(r, table, r->U32("batch src label"));
        se.edge.dst_label = TableLabel(r, table, r->U32("batch dst label"));
        se.edge.edge_label = TableLabel(r, table, r->U32("batch edge label"));
        se.edge.ts = r->I64("batch edge ts");
        se.run_anchors = r->U8("batch anchor bit") != 0;
        frame->batch.edges.push_back(se);
      }
      break;
    }
    case CtrlType::kExchange: {
      const std::vector<LabelId> table = DecodeLabelTable(r, interner);
      const uint32_t n = r->U32("exchange item count");
      if (!r->ok) return;
      // An item costs at least its fixed header; bound before reserving.
      constexpr size_t kMinItemBytes = 4 + 1 + 4 + 4 + 4 + 4 + 1 + 1;
      if (n > r->remaining() / kMinItemBytes) {
        r->Fail("exchange item count exceeds body");
        return;
      }
      frame->exchange.items.reserve(n);
      for (uint32_t i = 0; i < n && r->ok; ++i) {
        CtrlExchangeItem ci;
        ci.dest = r->I32("exchange dest");
        const uint8_t kind = r->U8("exchange kind");
        if (kind > static_cast<uint8_t>(ExchangeKind::kComplete)) {
          r->Fail("exchange kind out of range");
          return;
        }
        ci.item.kind = static_cast<ExchangeKind>(kind);
        ci.item.query_id = r->I32("exchange query id");
        ci.item.plan = r->U32("exchange plan");
        ci.item.step = r->I32("exchange step");
        ci.item.node = r->I32("exchange node");
        ci.item.match = DecodeWireMatch(r, table);
        frame->exchange.items.push_back(std::move(ci));
      }
      break;
    }
    case CtrlType::kBarrier:
      frame->barrier.round = r->U32("barrier round");
      break;
    case CtrlType::kBarrierAck:
      frame->barrier_ack.round = r->U32("barrier-ack round");
      frame->barrier_ack.applied_frames = r->U64("barrier-ack applied");
      break;
    case CtrlType::kCommit:
      frame->commit.watermark = r->I64("commit watermark");
      break;
    case CtrlType::kCompletion: {
      const std::vector<LabelId> table = DecodeLabelTable(r, interner);
      frame->completion.query_id = r->I32("completion query id");
      frame->completion.completed_at = r->I64("completion ts");
      frame->completion.match = DecodeWireMatch(r, table);
      break;
    }
    case CtrlType::kInfo:
      frame->info.query_id = r->I32("info query id");
      break;
    case CtrlType::kInfoAck: {
      CtrlInfoAck& ack = frame->info_ack;
      ack.ok = r->U8("info-ack ok") != 0;
      ack.error = r->String("info-ack error");
      ack.name = r->String("info-ack name");
      ack.window = r->I64("info-ack window");
      ack.completions = r->U64("info-ack completions");
      ack.live_partial_matches = r->U64("info-ack live");
      ack.peak_partial_matches = r->U64("info-ack peak");
      const uint32_t n = r->U32("info-ack node count");
      if (!r->ok) return;
      constexpr size_t kNodeBytes = 4 + 1 + 4 + 5 * 8;
      if (r->remaining() != n * kNodeBytes) {
        r->Fail("body length does not match info-ack node records");
        return;
      }
      ack.nodes.reserve(n);
      for (uint32_t i = 0; i < n && r->ok; ++i) {
        CtrlNodeRuntime node;
        node.node = r->I32("info-ack node id");
        node.is_leaf = r->U8("info-ack node leaf") != 0;
        node.query_edges = r->I32("info-ack node edges");
        node.matches_inserted = r->U64("info-ack node inserted");
        node.probes = r->U64("info-ack node probes");
        node.join_attempts = r->U64("info-ack node attempts");
        node.joins_succeeded = r->U64("info-ack node joins");
        node.live_partial_matches = r->U64("info-ack node live");
        ack.nodes.push_back(node);
      }
      break;
    }
    case CtrlType::kStats:
    case CtrlType::kMetricsRequest:
      break;
    case CtrlType::kMetricsReport: {
      // Verify the trailing CRC-32 before trusting any field: a report
      // that parses but lies would silently skew every federated series.
      if (r->remaining() < 4) {
        r->Fail("metrics report shorter than its CRC");
        return;
      }
      const size_t payload_len = r->remaining() - 4;
      if (Crc32(r->p, payload_len) != GetU32(r->p + payload_len)) {
        r->Fail("metrics report CRC mismatch");
        return;
      }
      CtrlMetricsReport& rep = frame->metrics_report;
      rep.wal_seq = r->U64("metrics wal seq");
      rep.replayed_frames = r->U64("metrics replayed");
      rep.exchange_items_sent = r->U64("metrics exchange sent");
      rep.completions_sent = r->U64("metrics completions sent");
      const uint32_t n = r->U32("metrics sample count");
      if (!r->ok) return;
      // A sample costs at least kind + three u16 lengths; bound before
      // reserving.
      if (n > r->remaining() / 7) {
        r->Fail("metrics sample count exceeds body");
        return;
      }
      rep.samples.reserve(n);
      for (uint32_t i = 0; i < n && r->ok; ++i) {
        MetricSample s;
        const uint8_t kind = r->U8("metrics sample kind");
        if (kind > static_cast<uint8_t>(MetricSample::Kind::kHistogram)) {
          r->Fail("metrics sample kind out of range");
          return;
        }
        s.kind = static_cast<MetricSample::Kind>(kind);
        s.name = r->String("metrics sample name");
        s.help = r->String("metrics sample help");
        const uint16_t nl = r->U16("metrics label count");
        if (nl > r->remaining() / 4) {
          r->Fail("metrics label count exceeds body");
          return;
        }
        s.labels.reserve(nl);
        for (uint16_t l = 0; l < nl && r->ok; ++l) {
          std::string key = r->String("metrics label key");
          std::string value = r->String("metrics label value");
          s.labels.emplace_back(std::move(key), std::move(value));
        }
        switch (s.kind) {
          case MetricSample::Kind::kCounter:
            s.counter = r->U64("metrics counter value");
            break;
          case MetricSample::Kind::kGauge:
            s.gauge = std::bit_cast<double>(r->U64("metrics gauge bits"));
            break;
          case MetricSample::Kind::kHistogram: {
            // Sparse buckets: (index, count) pairs in strictly ascending
            // index order, then the value sum.
            const uint8_t nb = r->U8("metrics histogram bucket count");
            if (nb > Histogram::kNumBuckets) {
              r->Fail("metrics histogram bucket count out of range");
              return;
            }
            std::array<uint64_t, Histogram::kNumBuckets> counts{};
            int last = -1;
            for (uint8_t b = 0; b < nb && r->ok; ++b) {
              const uint8_t idx = r->U8("metrics histogram bucket index");
              if (idx >= Histogram::kNumBuckets ||
                  static_cast<int>(idx) <= last) {
                r->Fail("metrics histogram bucket index out of order");
                return;
              }
              last = idx;
              counts[idx] = r->U64("metrics histogram bucket value");
            }
            const uint64_t sum = r->U64("metrics histogram sum");
            s.histogram = Histogram::FromBuckets(counts, sum);
            break;
          }
        }
        if (!r->ok) return;
        rep.samples.push_back(std::move(s));
      }
      // The verified CRC trailer; consuming it satisfies the whole-body
      // trailing-bytes check.
      r->U32("metrics report crc");
      break;
    }
    case CtrlType::kStatsAck: {
      CtrlStatsAck& ack = frame->stats_ack;
      ack.retained_edges = r->U64("stats retained edges");
      ack.retained_vertices = r->U64("stats retained vertices");
      ack.evicted_edges = r->U64("stats evicted");
      ack.edges_processed = r->U64("stats processed");
      ack.completions = r->U64("stats completions");
      ack.live_partial_matches = r->U64("stats live");
      ack.exchange.sent_expansions = r->U64("stats sent expansions");
      ack.exchange.sent_inserts = r->U64("stats sent inserts");
      ack.exchange.sent_completions = r->U64("stats sent completions");
      ack.exchange.received_expansions = r->U64("stats recv expansions");
      ack.exchange.received_inserts = r->U64("stats recv inserts");
      ack.exchange.received_completions = r->U64("stats recv completions");
      break;
    }
  }
}

}  // namespace

bool IsStateCtrlType(CtrlType type) {
  switch (type) {
    case CtrlType::kRegister:
    case CtrlType::kEndBackfill:
    case CtrlType::kUnregister:
    case CtrlType::kBatch:
    case CtrlType::kExchange:
    case CtrlType::kCommit:
      return true;
    default:
      return false;
  }
}

bool IsCtrlFrameStart(std::string_view buf) {
  return !buf.empty() && buf[0] == kCtrlFrameMagic[0];
}

CtrlDecodeResult DecodeCtrlFrame(std::string_view buf, size_t max_body_bytes,
                                 Interner* interner) {
  CtrlDecodeResult result;
  if (buf.size() < kCtrlFrameHeaderBytes) return result;  // kNeedMore
  if (std::memcmp(buf.data(), kCtrlFrameMagic, sizeof(kCtrlFrameMagic)) != 0) {
    result.status = FrameDecodeStatus::kMalformed;
    result.frame_bytes = 0;  // no length to skip by; stream is lost
    result.error = "bad control-frame magic (stream desynchronized)";
    return result;
  }
  const size_t body_len = GetU32(buf.data() + 4);
  const size_t frame_bytes = kCtrlFrameHeaderBytes + body_len;
  if (body_len > max_body_bytes) {
    result.status = FrameDecodeStatus::kOversized;
    result.frame_bytes = frame_bytes;
    result.error = StrCat("control frame body of ", body_len,
                          " bytes exceeds ", max_body_bytes);
    return result;
  }
  if (buf.size() < frame_bytes) return result;  // kNeedMore

  const char* const body = buf.data() + kCtrlFrameHeaderBytes;
  Reader r(body, body + body_len);
  const uint8_t type = r.U8("frame type");
  if (type < static_cast<uint8_t>(CtrlType::kHello) ||
      type > static_cast<uint8_t>(CtrlType::kMetricsReport)) {
    result.status = FrameDecodeStatus::kMalformed;
    result.frame_bytes = frame_bytes;
    result.error = StrCat("unknown control frame type ", type);
    return result;
  }
  result.frame.type = static_cast<CtrlType>(type);
  DecodeBody(&r, interner, &result.frame);
  if (r.ok && r.remaining() != 0) {
    r.Fail("trailing bytes after payload");
  }
  if (!r.ok) {
    result.status = FrameDecodeStatus::kMalformed;
    result.frame_bytes = frame_bytes;
    result.error = StrCat("malformed control frame: ", r.err);
    return result;
  }
  result.status = FrameDecodeStatus::kOk;
  result.frame_bytes = frame_bytes;
  return result;
}

std::string EncodeHelloFrame(const CtrlHello& hello) {
  std::string body = BodyFor(CtrlType::kHello);
  PutU32(&body, hello.protocol);
  PutU32(&body, static_cast<uint32_t>(hello.num_shards));
  PutU32(&body, static_cast<uint32_t>(hello.shard_index));
  PutU64(&body, hello.partitioner_seed);
  PutU64(&body, hello.exchange_items_received);
  PutU64(&body, hello.completions_received);
  return FinishFrame(std::move(body));
}

std::string EncodeHelloAckFrame(const CtrlHelloAck& ack) {
  std::string body = BodyFor(CtrlType::kHelloAck);
  PutU64(&body, ack.applied_frames);
  return FinishFrame(std::move(body));
}

std::string EncodeRegisterFrame(const CtrlRegister& reg) {
  std::string body = BodyFor(CtrlType::kRegister);
  PutU32(&body, static_cast<uint32_t>(reg.expect_id));
  body.push_back(static_cast<char>(reg.strategy));
  PutI64(&body, reg.window);
  PutString(&body, reg.name);
  body.push_back(static_cast<char>(reg.vertex_labels.size()));
  body.push_back(static_cast<char>(reg.edges.size()));
  for (const std::string& label : reg.vertex_labels) PutString(&body, label);
  for (const CtrlQueryEdge& e : reg.edges) {
    body.push_back(static_cast<char>(e.src));
    body.push_back(static_cast<char>(e.dst));
    PutString(&body, e.label);
  }
  return FinishFrame(std::move(body));
}

std::string EncodeRegisterAckFrame(const CtrlRegisterAck& ack) {
  std::string body = BodyFor(CtrlType::kRegisterAck);
  PutU32(&body, static_cast<uint32_t>(ack.id));
  body.push_back(ack.ok ? 1 : 0);
  PutString(&body, ack.error);
  return FinishFrame(std::move(body));
}

std::string EncodeEndBackfillFrame() {
  return FinishFrame(BodyFor(CtrlType::kEndBackfill));
}

std::string EncodeUnregisterFrame(const CtrlUnregister& unregister) {
  std::string body = BodyFor(CtrlType::kUnregister);
  PutU32(&body, static_cast<uint32_t>(unregister.query_id));
  return FinishFrame(std::move(body));
}

std::string EncodeBatchFrame(const CtrlBatch& batch,
                             const LabelNameFn& label_name) {
  LabelTable table(label_name);
  struct Indexes {
    uint32_t src, dst, edge;
  };
  std::vector<Indexes> indexes;
  indexes.reserve(batch.edges.size());
  for (const CtrlShardEdge& se : batch.edges) {
    indexes.push_back({table.IndexOf(se.edge.src_label),
                       table.IndexOf(se.edge.dst_label),
                       table.IndexOf(se.edge.edge_label)});
  }
  std::string body = BodyFor(CtrlType::kBatch);
  table.Encode(&body);
  PutU32(&body, static_cast<uint32_t>(batch.edges.size()));
  for (size_t i = 0; i < batch.edges.size(); ++i) {
    const CtrlShardEdge& se = batch.edges[i];
    PutU64(&body, se.global_id);
    PutU64(&body, se.edge.src);
    PutU64(&body, se.edge.dst);
    PutU32(&body, indexes[i].src);
    PutU32(&body, indexes[i].dst);
    PutU32(&body, indexes[i].edge);
    PutI64(&body, se.edge.ts);
    body.push_back(se.run_anchors ? 1 : 0);
  }
  return FinishFrame(std::move(body));
}

std::string EncodeExchangeFrame(const CtrlExchange& exchange,
                                const LabelNameFn& label_name) {
  LabelTable table(label_name);
  std::string items;
  for (const CtrlExchangeItem& ci : exchange.items) {
    PutU32(&items, static_cast<uint32_t>(ci.dest));
    items.push_back(static_cast<char>(ci.item.kind));
    PutU32(&items, static_cast<uint32_t>(ci.item.query_id));
    PutU32(&items, ci.item.plan);
    PutU32(&items, static_cast<uint32_t>(ci.item.step));
    PutU32(&items, static_cast<uint32_t>(ci.item.node));
    EncodeWireMatch(&items, ci.item.match, &table);
  }
  std::string body = BodyFor(CtrlType::kExchange);
  table.Encode(&body);
  PutU32(&body, static_cast<uint32_t>(exchange.items.size()));
  body.append(items);
  return FinishFrame(std::move(body));
}

std::string EncodeBarrierFrame(const CtrlBarrier& barrier) {
  std::string body = BodyFor(CtrlType::kBarrier);
  PutU32(&body, barrier.round);
  return FinishFrame(std::move(body));
}

std::string EncodeBarrierAckFrame(const CtrlBarrierAck& ack) {
  std::string body = BodyFor(CtrlType::kBarrierAck);
  PutU32(&body, ack.round);
  PutU64(&body, ack.applied_frames);
  return FinishFrame(std::move(body));
}

std::string EncodeCommitFrame(const CtrlCommit& commit) {
  std::string body = BodyFor(CtrlType::kCommit);
  PutI64(&body, commit.watermark);
  return FinishFrame(std::move(body));
}

std::string EncodeCompletionFrame(const CtrlCompletion& completion,
                                  const LabelNameFn& label_name) {
  LabelTable table(label_name);
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(completion.query_id));
  PutI64(&payload, completion.completed_at);
  EncodeWireMatch(&payload, completion.match, &table);
  std::string body = BodyFor(CtrlType::kCompletion);
  table.Encode(&body);
  body.append(payload);
  return FinishFrame(std::move(body));
}

std::string EncodeInfoFrame(const CtrlInfo& info) {
  std::string body = BodyFor(CtrlType::kInfo);
  PutU32(&body, static_cast<uint32_t>(info.query_id));
  return FinishFrame(std::move(body));
}

std::string EncodeInfoAckFrame(const CtrlInfoAck& ack) {
  std::string body = BodyFor(CtrlType::kInfoAck);
  body.push_back(ack.ok ? 1 : 0);
  PutString(&body, ack.error);
  PutString(&body, ack.name);
  PutI64(&body, ack.window);
  PutU64(&body, ack.completions);
  PutU64(&body, ack.live_partial_matches);
  PutU64(&body, ack.peak_partial_matches);
  PutU32(&body, static_cast<uint32_t>(ack.nodes.size()));
  for (const CtrlNodeRuntime& node : ack.nodes) {
    PutU32(&body, static_cast<uint32_t>(node.node));
    body.push_back(node.is_leaf ? 1 : 0);
    PutU32(&body, static_cast<uint32_t>(node.query_edges));
    PutU64(&body, node.matches_inserted);
    PutU64(&body, node.probes);
    PutU64(&body, node.join_attempts);
    PutU64(&body, node.joins_succeeded);
    PutU64(&body, node.live_partial_matches);
  }
  return FinishFrame(std::move(body));
}

std::string EncodeStatsFrame() {
  return FinishFrame(BodyFor(CtrlType::kStats));
}

std::string EncodeStatsAckFrame(const CtrlStatsAck& ack) {
  std::string body = BodyFor(CtrlType::kStatsAck);
  PutU64(&body, ack.retained_edges);
  PutU64(&body, ack.retained_vertices);
  PutU64(&body, ack.evicted_edges);
  PutU64(&body, ack.edges_processed);
  PutU64(&body, ack.completions);
  PutU64(&body, ack.live_partial_matches);
  PutU64(&body, ack.exchange.sent_expansions);
  PutU64(&body, ack.exchange.sent_inserts);
  PutU64(&body, ack.exchange.sent_completions);
  PutU64(&body, ack.exchange.received_expansions);
  PutU64(&body, ack.exchange.received_inserts);
  PutU64(&body, ack.exchange.received_completions);
  return FinishFrame(std::move(body));
}

std::string EncodeMetricsRequestFrame() {
  return FinishFrame(BodyFor(CtrlType::kMetricsRequest));
}

std::string EncodeMetricsReportFrame(const CtrlMetricsReport& report) {
  std::string body = BodyFor(CtrlType::kMetricsReport);
  PutU64(&body, report.wal_seq);
  PutU64(&body, report.replayed_frames);
  PutU64(&body, report.exchange_items_sent);
  PutU64(&body, report.completions_sent);
  PutU32(&body, static_cast<uint32_t>(report.samples.size()));
  for (const MetricSample& s : report.samples) {
    body.push_back(static_cast<char>(s.kind));
    PutString(&body, s.name);
    PutString(&body, s.help);
    PutU16(&body, static_cast<uint16_t>(s.labels.size()));
    for (const auto& [key, value] : s.labels) {
      PutString(&body, key);
      PutString(&body, value);
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        PutU64(&body, s.counter);
        break;
      case MetricSample::Kind::kGauge:
        PutU64(&body, std::bit_cast<uint64_t>(s.gauge));
        break;
      case MetricSample::Kind::kHistogram: {
        uint8_t occupied = 0;
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          if (s.histogram.bucket_count(b) != 0) ++occupied;
        }
        body.push_back(static_cast<char>(occupied));
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          const uint64_t count = s.histogram.bucket_count(b);
          if (count == 0) continue;
          body.push_back(static_cast<char>(b));
          PutU64(&body, count);
        }
        PutU64(&body, s.histogram.sum());
        break;
      }
    }
  }
  // CRC over the payload (everything after the type byte); the decoder
  // verifies it before reading a single field.
  PutU32(&body, Crc32(body.data() + 1, body.size() - 1));
  return FinishFrame(std::move(body));
}

}  // namespace streamworks
