#include "streamworks/stream/workload_queries.h"

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

QueryGraph BuildSmurfQuery(Interner* interner, int num_amplifiers) {
  SW_CHECK_GT(num_amplifiers, 0);
  QueryGraphBuilder builder(interner);
  const QueryVertexId attacker = builder.AddVertex("Host");
  const QueryVertexId victim = builder.AddVertex("Host");
  for (int i = 0; i < num_amplifiers; ++i) {
    const QueryVertexId amp = builder.AddVertex("Host");
    builder.AddEdge(attacker, amp, "icmpEchoReq");
    builder.AddEdge(amp, victim, "icmpEchoReply");
  }
  return builder.Build(StrCat("smurf_ddos_", num_amplifiers)).value();
}

QueryGraph BuildWormQuery(Interner* interner, int hops) {
  SW_CHECK_GT(hops, 0);
  QueryGraphBuilder builder(interner);
  QueryVertexId prev = builder.AddVertex("Host");
  for (int i = 0; i < hops; ++i) {
    const QueryVertexId next = builder.AddVertex("Host");
    builder.AddEdge(prev, next, "exploit");
    prev = next;
  }
  return builder.Build(StrCat("worm_", hops, "hop")).value();
}

QueryGraph BuildPortScanQuery(Interner* interner, int num_targets) {
  SW_CHECK_GT(num_targets, 0);
  QueryGraphBuilder builder(interner);
  const QueryVertexId scanner = builder.AddVertex("Host");
  for (int i = 0; i < num_targets; ++i) {
    const QueryVertexId target = builder.AddVertex("Host");
    builder.AddEdge(scanner, target, "synProbe");
  }
  return builder.Build(StrCat("port_scan_", num_targets)).value();
}

QueryGraph BuildExfiltrationQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const QueryVertexId internal = builder.AddVertex("Host");
  const QueryVertexId staging = builder.AddVertex("Host");
  const QueryVertexId external = builder.AddVertex("Host");
  builder.AddEdge(internal, staging, "copy");
  builder.AddEdge(staging, external, "upload");
  return builder.Build("exfiltration").value();
}

QueryGraph BuildNewsEventQuery(Interner* interner, std::string_view topic,
                               int num_articles) {
  SW_CHECK_GT(num_articles, 0);
  QueryGraphBuilder builder(interner);
  const QueryVertexId keyword = builder.AddVertex(topic);
  const QueryVertexId location = builder.AddVertex("Location");
  for (int i = 0; i < num_articles; ++i) {
    const QueryVertexId article = builder.AddVertex("Article");
    builder.AddEdge(article, keyword, "hasKeyword");
    builder.AddEdge(article, location, "hasLocation");
  }
  return builder.Build(StrCat("news_event_", topic, "_", num_articles))
      .value();
}

}  // namespace streamworks
