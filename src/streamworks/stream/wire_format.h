#ifndef STREAMWORKS_STREAM_WIRE_FORMAT_H_
#define STREAMWORKS_STREAM_WIRE_FORMAT_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// Binary batch framing for the wire protocol ("FEEDB"): one
/// length-prefixed frame carries a whole EdgeBatch, so a remote feeder
/// pays per-frame (not per-edge) tokenization, dispatch, and response
/// costs — the batched fast path in-process callers already have through
/// QueryBackend::FeedBatch.
///
/// Frame layout (all integers little-endian):
///
///   magic      4 bytes   0xFB 'F' 'B' '1'
///   body_len   u32       byte length of everything after this field
///   body:
///     n_labels u32       string table size
///     n_labels x { len u16, bytes[len] }     label strings, no terminator
///     n_edges  u32
///     n_edges  x {
///       src        u64   external vertex id
///       dst        u64
///       src_label  u32   index into this frame's string table
///       dst_label  u32
///       edge_label u32
///       ts         i64   event timestamp
///     }                                      (36 bytes per edge record)
///
/// The leading 0xFB byte cannot begin a text protocol line (commands are
/// ASCII), which is what lets a server demultiplex binary frames and text
/// lines from the same byte stream. Labels cross the wire as strings —
/// interned once per frame on receipt — because LabelIds are private to
/// each process's Interner.
inline constexpr char kFeedFrameMagic[4] = {'\xFB', 'F', 'B', '1'};
inline constexpr size_t kFeedFrameHeaderBytes = 8;
inline constexpr size_t kFeedFrameEdgeBytes = 36;
inline constexpr size_t kDefaultMaxFrameBodyBytes = 8u * 1024 * 1024;

/// True when `buf` begins with the frame-magic lead byte — i.e. the bytes
/// at the head of the buffer can only be (the beginning of) a binary
/// frame, never a text line.
bool IsFrameStart(std::string_view buf);

/// Serializes `batch` into one FEEDB frame. Label ids are resolved to
/// strings through `interner` and deduplicated into the frame's string
/// table (each distinct label costs its bytes once per frame, not once
/// per edge). InvalidArgument when the batch cannot be represented (a
/// label longer than 64KB, or a body past the u32 length prefix) —
/// truncating silently would declare lengths that disagree with the
/// bytes and desync the decoder.
StatusOr<std::string> EncodeFeedFrame(const EdgeBatch& batch,
                                      const Interner& interner);

/// Parses the six FEED text fields `<src> <SrcLabel> <dst> <DstLabel>
/// <edgeLabel> <ts>` into `edge`, interning labels into `interner`. The
/// one FEED-line grammar shared by the interpreter's text path and the
/// client's --feed-file parser, so the two can never drift.
Status ParseFeedFields(std::span<const std::string_view> fields,
                       Interner* interner, StreamEdge* edge);

enum class FrameDecodeStatus {
  kNeedMore,   ///< The buffer holds a frame prefix; read more bytes.
  kOk,         ///< One whole frame decoded into `batch`.
  kOversized,  ///< body_len exceeds the limit; skip `frame_bytes` total.
  kMalformed,  ///< Structurally invalid body (or bad magic: frame_bytes 0).
};

struct FrameDecodeResult {
  FrameDecodeStatus status = FrameDecodeStatus::kNeedMore;
  /// Total frame size (header + body). For kOk: how many bytes to
  /// consume. For kOversized / kMalformed: how many bytes to skip to stay
  /// in sync — except frame_bytes == 0 (magic mismatch), where the stream
  /// position is unrecoverable.
  size_t frame_bytes = 0;
  EdgeBatch batch;    ///< Valid for kOk.
  std::string error;  ///< Human-readable cause for kOversized/kMalformed.
};

/// Attempts to decode one frame from the head of `buf` (which must begin
/// with the magic lead byte). Never consumes: the caller advances its
/// buffer by `frame_bytes`. Each string-table label is interned into
/// `interner` exactly once per frame.
FrameDecodeResult DecodeFeedFrame(std::string_view buf,
                                  size_t max_body_bytes, Interner* interner);

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_WIRE_FORMAT_H_
