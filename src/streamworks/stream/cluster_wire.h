#ifndef STREAMWORKS_STREAM_CLUSTER_WIRE_H_
#define STREAMWORKS_STREAM_CLUSTER_WIRE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/stream_edge.h"
#include "streamworks/obs/metric_sample.h"
#include "streamworks/sjtree/exchange.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

/// Cluster control frames: the length-prefixed wire a coordinator daemon
/// and its worker daemons speak (the FEEDB layout's sibling — same
/// magic + u32 LE body shape, different magic byte so the two never
/// demux into each other's decoder).
///
///   [0xFC 'C' 'T' '1'] [body_len u32 LE] [type u8] [payload ...]
///
/// Payloads carry labels by *string* (per-frame string table, FEEDB
/// style: u32 count, then {u16 len, bytes} entries) because LabelIds are
/// per-process artifacts; vertices cross the wire by external id and
/// edges by their group-global ingest id, exactly like the in-process
/// MatchExchange wire form they transport.
///
/// A subset of the frame types is *state-bearing*: applying one mutates a
/// worker's engine. Workers assign those frames a dense sequence number
/// in arrival order and write each to a FrameLog before applying it, so
/// a crashed worker rebuilds by replaying its log and asking the
/// coordinator only for the suffix it never saw (see cluster/worker.h
/// for the recovery contract).
inline constexpr char kCtrlFrameMagic[4] = {'\xFC', 'C', 'T', '1'};
inline constexpr size_t kCtrlFrameHeaderBytes = 8;  ///< magic + body_len
inline constexpr uint32_t kCtrlProtocolVersion = 1;

enum class CtrlType : uint8_t {
  kHello = 1,       ///< coordinator -> worker: identity + recovery cursors
  kHelloAck = 2,    ///< worker -> coordinator: frames durably applied
  kRegister = 3,    ///< [state] replicate a query registration
  kRegisterAck = 4, ///< worker -> coordinator: assigned id / error
  kEndBackfill = 5, ///< [state] distributed backfill done; unsuppress
  kUnregister = 6,  ///< [state] drop a query
  kBatch = 7,       ///< [state] owned edges of one ingest epoch
  kExchange = 8,    ///< [state on worker] forwarded partial matches
  kBarrier = 9,     ///< coordinator -> worker: epoch barrier probe
  kBarrierAck = 10, ///< worker -> coordinator: barrier echo + log cursor
  kCommit = 11,     ///< [state] group watermark broadcast (expiry)
  kCompletion = 12, ///< worker -> coordinator: one completed match
  kInfo = 13,       ///< coordinator -> worker: query_info request
  kInfoAck = 14,
  kStats = 15,      ///< coordinator -> worker: shard-load request
  kStatsAck = 16,
  kMetricsRequest = 17,  ///< coordinator -> worker: registry snapshot pull
  kMetricsReport = 18,   ///< worker -> coordinator: CRC'd registry snapshot
};

/// True for the frame types a worker logs-then-applies (everything that
/// mutates engine state); the rest are unlogged request/response chatter.
bool IsStateCtrlType(CtrlType type);

// --- Payload structs ---------------------------------------------------------

struct CtrlHello {
  uint32_t protocol = kCtrlProtocolVersion;
  int32_t num_shards = 0;
  int32_t shard_index = -1;
  uint64_t partitioner_seed = 0;
  /// Recovery cursors: how many exchange items / completions the
  /// coordinator has already received from this worker over all time.
  /// The worker's replay regenerates both streams deterministically and
  /// skips these prefixes, so a crash loses nothing and repeats nothing.
  uint64_t exchange_items_received = 0;
  uint64_t completions_received = 0;
};

struct CtrlHelloAck {
  uint64_t applied_frames = 0;  ///< State frames in the worker's log.
};

struct CtrlQueryEdge {
  uint8_t src = 0;
  uint8_t dst = 0;
  std::string label;
};

struct CtrlRegister {
  int32_t expect_id = -1;  ///< Group id; every worker must assign the same.
  uint8_t strategy = 0;    ///< DecompositionStrategy, replicated verbatim.
  Timestamp window = 0;
  std::string name;
  std::vector<std::string> vertex_labels;
  std::vector<CtrlQueryEdge> edges;
};

struct CtrlRegisterAck {
  int32_t id = -1;
  bool ok = false;
  std::string error;
};

struct CtrlUnregister {
  int32_t query_id = -1;
};

/// One routed edge of an ingest epoch: the group-global id plus the
/// anchor bit (exactly one endpoint owner per edge runs anchor search).
struct CtrlShardEdge {
  StreamEdge edge;
  EdgeId global_id = kInvalidEdgeId;
  bool run_anchors = false;
};

struct CtrlBatch {
  std::vector<CtrlShardEdge> edges;
};

/// One forwarded exchange item plus its destination shard. Worker ->
/// coordinator frames carry the real destination (the coordinator relays;
/// workers never talk to each other); coordinator -> worker frames carry
/// the receiver's own shard index.
struct CtrlExchangeItem {
  int32_t dest = -1;
  ExchangeItem item;
};

struct CtrlExchange {
  std::vector<CtrlExchangeItem> items;
};

struct CtrlBarrier {
  uint32_t round = 0;
};

struct CtrlBarrierAck {
  uint32_t round = 0;
  uint64_t applied_frames = 0;  ///< Lets the coordinator prune its resend buffer.
};

struct CtrlCommit {
  Timestamp watermark = -1;
};

struct CtrlCompletion {
  int32_t query_id = -1;
  Timestamp completed_at = 0;
  WireMatch match;
};

struct CtrlInfo {
  int32_t query_id = -1;
};

struct CtrlNodeRuntime {
  int32_t node = -1;
  bool is_leaf = false;
  int32_t query_edges = 0;
  uint64_t matches_inserted = 0;
  uint64_t probes = 0;
  uint64_t join_attempts = 0;
  uint64_t joins_succeeded = 0;
  uint64_t live_partial_matches = 0;
};

struct CtrlInfoAck {
  bool ok = false;
  std::string error;
  std::string name;
  Timestamp window = 0;
  uint64_t completions = 0;
  uint64_t live_partial_matches = 0;
  uint64_t peak_partial_matches = 0;
  std::vector<CtrlNodeRuntime> nodes;
};

struct CtrlStatsAck {
  uint64_t retained_edges = 0;
  uint64_t retained_vertices = 0;
  uint64_t evicted_edges = 0;
  uint64_t edges_processed = 0;
  uint64_t completions = 0;
  uint64_t live_partial_matches = 0;
  ExchangeCounters exchange;
};

/// A worker's full metric snapshot: health header plus every series its
/// MetricRegistry renders, flattened to wire samples. Unlike the other
/// payloads this one carries a trailing CRC-32 over the payload bytes —
/// a report that decodes but lies (one flipped histogram bucket) would
/// silently skew every federated quantile, so the coordinator verifies
/// integrity before merging, the same trust posture the frame log takes
/// with its on-disk records.
struct CtrlMetricsReport {
  uint64_t wal_seq = 0;          ///< State frames durable in the worker's log.
  uint64_t replayed_frames = 0;  ///< Frames replayed at last restart.
  uint64_t exchange_items_sent = 0;
  uint64_t completions_sent = 0;
  std::vector<MetricSample> samples;
};

/// One decoded control frame: `type` says which payload member is live
/// (the others stay default-constructed). A tagged union would save a few
/// hundred idle bytes per frame; frames are transient decode scratch, so
/// the flat struct wins on simplicity.
struct CtrlFrame {
  CtrlType type = CtrlType::kHello;
  CtrlHello hello;
  CtrlHelloAck hello_ack;
  CtrlRegister reg;
  CtrlRegisterAck register_ack;
  CtrlUnregister unregister;
  CtrlBatch batch;
  CtrlExchange exchange;
  CtrlBarrier barrier;
  CtrlBarrierAck barrier_ack;
  CtrlCommit commit;
  CtrlCompletion completion;
  CtrlInfo info;
  CtrlInfoAck info_ack;
  CtrlStatsAck stats_ack;
  CtrlMetricsReport metrics_report;
};

/// Decode result, shaped exactly like the FEEDB decoder's so callers (and
/// the fuzz harness) share one discipline: kNeedMore consumes nothing;
/// kOk/kOversized consume `frame_bytes`; kMalformed with frame_bytes == 0
/// means the magic itself was wrong and the stream is desynchronized.
struct CtrlDecodeResult {
  FrameDecodeStatus status = FrameDecodeStatus::kNeedMore;
  size_t frame_bytes = 0;
  CtrlFrame frame;
  std::string error;
};

/// True if `buf` begins with the control-frame magic's lead byte.
bool IsCtrlFrameStart(std::string_view buf);

/// Decodes the first control frame of `buf`. Never consumes input itself;
/// the caller advances by `frame_bytes` on kOk/kOversized. `interner`
/// receives the frame's label strings (decode is the interning boundary;
/// everything after it speaks LabelIds again).
CtrlDecodeResult DecodeCtrlFrame(std::string_view buf, size_t max_body_bytes,
                                 Interner* interner);

/// Resolves a LabelId to its string for encoding. An std::function rather
/// than an Interner because the coordinator's ingest pump encodes off the
/// control thread and reads a thread-safe name cache instead of the
/// shared (non-thread-safe) interner.
using LabelNameFn = std::function<std::string_view(LabelId)>;

// --- Encoders (one per frame type; all return a complete framed message) ----

std::string EncodeHelloFrame(const CtrlHello& hello);
std::string EncodeHelloAckFrame(const CtrlHelloAck& ack);
std::string EncodeRegisterFrame(const CtrlRegister& reg);
std::string EncodeRegisterAckFrame(const CtrlRegisterAck& ack);
std::string EncodeEndBackfillFrame();
std::string EncodeUnregisterFrame(const CtrlUnregister& unregister);
std::string EncodeBatchFrame(const CtrlBatch& batch,
                             const LabelNameFn& label_name);
std::string EncodeExchangeFrame(const CtrlExchange& exchange,
                                const LabelNameFn& label_name);
std::string EncodeBarrierFrame(const CtrlBarrier& barrier);
std::string EncodeBarrierAckFrame(const CtrlBarrierAck& ack);
std::string EncodeCommitFrame(const CtrlCommit& commit);
std::string EncodeCompletionFrame(const CtrlCompletion& completion,
                                  const LabelNameFn& label_name);
std::string EncodeInfoFrame(const CtrlInfo& info);
std::string EncodeInfoAckFrame(const CtrlInfoAck& ack);
std::string EncodeStatsFrame();
std::string EncodeStatsAckFrame(const CtrlStatsAck& ack);
std::string EncodeMetricsRequestFrame();
std::string EncodeMetricsReportFrame(const CtrlMetricsReport& report);

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_CLUSTER_WIRE_H_
