#include "streamworks/stream/news_gen.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

NewsGenerator::NewsGenerator(const Options& options, Interner* interner)
    : options_(options),
      interner_(interner),
      rng_(options.seed),
      keyword_sampler_(options.num_keywords, options.entity_skew),
      location_sampler_(options.num_locations, options.entity_skew),
      person_sampler_(options.num_people, options.entity_skew),
      org_sampler_(options.num_organizations, options.entity_skew) {
  SW_CHECK_GT(options.num_articles, 0);
  SW_CHECK_GT(options.num_keywords, 0);
  SW_CHECK_GT(options.num_locations, 0);
  SW_CHECK(!options.topics.empty());
  SW_CHECK_GE(options.keywords_per_article, 1.0);
  article_label_ = interner->Intern("Article");
  location_label_ = interner->Intern("Location");
  person_label_ = interner->Intern("Person");
  org_label_ = interner->Intern("Organization");
  has_keyword_ = interner->Intern("hasKeyword");
  has_location_ = interner->Intern("hasLocation");
  mentions_person_ = interner->Intern("mentionsPerson");
  mentions_org_ = interner->Intern("mentionsOrg");
  for (const std::string& t : options.topics) {
    topic_labels_.push_back(interner->Intern(t));
  }
}

StreamEdge NewsGenerator::Link(ExternalVertexId article,
                               ExternalVertexId entity,
                               LabelId entity_label, LabelId edge_label,
                               Timestamp ts) const {
  StreamEdge e;
  e.src = article;
  e.dst = entity;
  e.src_label = article_label_;
  e.dst_label = entity_label;
  e.edge_label = edge_label;
  e.ts = ts;
  return e;
}

void NewsGenerator::EmitArticle(ExternalVertexId article, Timestamp ts,
                                const std::vector<int>& keyword_ranks,
                                int location_rank, int person_rank,
                                int org_rank,
                                std::vector<StreamEdge>* out) const {
  for (int rank : keyword_ranks) {
    out->push_back(Link(article, kKeywordBase + rank,
                        topic_labels_[rank % topic_labels_.size()],
                        has_keyword_, ts));
  }
  if (location_rank >= 0) {
    out->push_back(Link(article, kLocationBase + location_rank,
                        location_label_, has_location_, ts));
  }
  if (person_rank >= 0) {
    out->push_back(Link(article, kPersonBase + person_rank, person_label_,
                        mentions_person_, ts));
  }
  if (org_rank >= 0) {
    out->push_back(Link(article, kOrganizationBase + org_rank, org_label_,
                        mentions_org_, ts));
  }
}

void NewsGenerator::InjectEvent(Timestamp at, std::string_view topic,
                                int num_articles) {
  SW_CHECK_GT(num_articles, 0);
  // Find the topic index; the keyword is drawn among keywords of that
  // topic (topics stripe the keyword ranks).
  int topic_index = -1;
  for (size_t i = 0; i < options_.topics.size(); ++i) {
    if (options_.topics[i] == topic) {
      topic_index = static_cast<int>(i);
      break;
    }
  }
  SW_CHECK_GE(topic_index, 0) << "unknown topic '" << topic << "'";
  const int strides =
      (options_.num_keywords - 1 - topic_index) /
          static_cast<int>(options_.topics.size()) +
      1;
  const int keyword_rank =
      topic_index + static_cast<int>(options_.topics.size()) *
                        static_cast<int>(rng_.NextBounded(strides));
  const int location_rank =
      static_cast<int>(rng_.NextBounded(options_.num_locations));

  Injection inj;
  inj.kind = std::string("event_") + std::string(topic);
  inj.at = at;
  for (int i = 0; i < num_articles; ++i) {
    // Injected articles get ids above the background range so they never
    // collide with organically published ones.
    const ExternalVertexId article =
        kArticleBase + options_.num_articles + next_injected_article_++;
    EmitArticle(article, at + i, {keyword_rank}, location_rank,
                /*person_rank=*/-1, /*org_rank=*/-1, &inj.edges);
  }
  injections_.push_back(std::move(inj));
}

std::vector<StreamEdge> NewsGenerator::Generate() {
  SW_CHECK(!generated_) << "Generate() may be called once";
  generated_ = true;

  std::vector<StreamEdge> edges;
  for (int i = 0; i < options_.num_articles; ++i) {
    const ExternalVertexId article = kArticleBase + i;
    const Timestamp ts = i / options_.articles_per_tick;
    // 1 + geometric-ish keyword count with the configured mean.
    const int num_keywords = static_cast<int>(
        rng_.NextBurstSize(options_.keywords_per_article));
    std::vector<int> keyword_ranks;
    for (int k = 0; k < num_keywords; ++k) {
      const int rank = static_cast<int>(keyword_sampler_.Sample(rng_));
      if (std::find(keyword_ranks.begin(), keyword_ranks.end(), rank) ==
          keyword_ranks.end()) {
        keyword_ranks.push_back(rank);
      }
    }
    const int location_rank =
        rng_.NextBool(0.85)
            ? static_cast<int>(location_sampler_.Sample(rng_))
            : -1;
    const int person_rank =
        rng_.NextBool(0.6) ? static_cast<int>(person_sampler_.Sample(rng_))
                           : -1;
    const int org_rank =
        rng_.NextBool(0.4) ? static_cast<int>(org_sampler_.Sample(rng_))
                           : -1;
    EmitArticle(article, ts, keyword_ranks, location_rank, person_rank,
                org_rank, &edges);
  }
  for (const Injection& inj : injections_) {
    edges.insert(edges.end(), inj.edges.begin(), inj.edges.end());
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const StreamEdge& a, const StreamEdge& b) {
                     return a.ts < b.ts;
                   });
  return edges;
}

}  // namespace streamworks
