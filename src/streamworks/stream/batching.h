#ifndef STREAMWORKS_STREAM_BATCHING_H_
#define STREAMWORKS_STREAM_BATCHING_H_

#include <cstddef>
#include <vector>

#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// Splits a timestamp-sorted edge vector into one batch per distinct
/// timestamp — the paper's per-timestep edge sets E_1, E_2, ….
std::vector<EdgeBatch> BatchByTick(const std::vector<StreamEdge>& edges);

/// Splits a timestamp-sorted edge vector into fixed-size batches (the last
/// batch may be short). Used by the batch-size sweeps in the baseline
/// comparison bench.
std::vector<EdgeBatch> BatchBySize(const std::vector<StreamEdge>& edges,
                                   size_t batch_size);

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_BATCHING_H_
