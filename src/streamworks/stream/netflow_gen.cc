#include "streamworks/stream/netflow_gen.h"

#include <algorithm>

#include "streamworks/common/logging.h"

namespace streamworks {

namespace {

/// Background protocol table, most-common-first; the Zipf sampler makes
/// rank 0 dominate.
constexpr const char* kCommonProtocols[] = {
    "tcpConn", "udpFlow", "dnsQuery", "httpReq", "tlsHandshake", "ntpSync",
};
constexpr const char* kAttackProtocols[] = {
    "icmpEchoReq", "icmpEchoReply", "synProbe", "exploit", "copy", "upload",
};

}  // namespace

NetflowGenerator::NetflowGenerator(const Options& options,
                                   Interner* interner)
    : options_(options),
      interner_(interner),
      rng_(options.seed),
      hosts_per_subnet_(options.num_hosts / options.num_subnets),
      host_label_(interner->Intern("Host")),
      protocol_sampler_(
          (options.attack_label_noise ? std::size(kCommonProtocols) +
                                            std::size(kAttackProtocols)
                                      : std::size(kCommonProtocols)),
          options.protocol_skew) {
  SW_CHECK_GT(options.num_hosts, 1);
  SW_CHECK_GT(options.num_subnets, 0);
  SW_CHECK_GE(options.num_hosts, options.num_subnets);
  SW_CHECK_GT(options.edges_per_tick, 0);
  for (const char* p : kCommonProtocols) {
    background_protocols_.push_back(interner->Intern(p));
  }
  icmp_echo_req_ = interner->Intern("icmpEchoReq");
  icmp_echo_reply_ = interner->Intern("icmpEchoReply");
  syn_probe_ = interner->Intern("synProbe");
  exploit_ = interner->Intern("exploit");
  copy_ = interner->Intern("copy");
  upload_ = interner->Intern("upload");
  if (options.attack_label_noise) {
    for (const char* p : kAttackProtocols) {
      background_protocols_.push_back(interner->Intern(p));
    }
  }
}

StreamEdge NetflowGenerator::MakeFlow(ExternalVertexId src,
                                      ExternalVertexId dst, LabelId protocol,
                                      Timestamp ts) const {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = host_label_;
  e.dst_label = host_label_;
  e.edge_label = protocol;
  e.ts = ts;
  return e;
}

ExternalVertexId NetflowGenerator::RandomHostInSubnet(int subnet) {
  if (subnet < 0) {
    subnet = static_cast<int>(rng_.NextBounded(options_.num_subnets));
  }
  return static_cast<ExternalVertexId>(subnet) * hosts_per_subnet_ +
         rng_.NextBounded(hosts_per_subnet_);
}

ExternalVertexId NetflowGenerator::RandomHost() {
  return rng_.NextBounded(options_.num_hosts);
}

void NetflowGenerator::InjectSmurf(Timestamp at, int num_amplifiers,
                                   int attacker_subnet, int victim_subnet) {
  SW_CHECK_GT(num_amplifiers, 0);
  Injection inj;
  inj.kind = "smurf";
  inj.at = at;
  const ExternalVertexId attacker = RandomHostInSubnet(attacker_subnet);
  ExternalVertexId victim = RandomHostInSubnet(victim_subnet);
  while (victim == attacker) victim = RandomHostInSubnet(victim_subnet);
  // Distinct amplifiers, none equal to attacker or victim. Echo requests go
  // out over the first tick; replies cascade on the next ticks — the
  // "emerging pattern" of Fig. 7.
  std::vector<ExternalVertexId> amplifiers;
  while (static_cast<int>(amplifiers.size()) < num_amplifiers) {
    const ExternalVertexId amp = RandomHost();
    if (amp == attacker || amp == victim) continue;
    if (std::find(amplifiers.begin(), amplifiers.end(), amp) !=
        amplifiers.end()) {
      continue;
    }
    amplifiers.push_back(amp);
  }
  for (const ExternalVertexId amp : amplifiers) {
    inj.edges.push_back(MakeFlow(attacker, amp, icmp_echo_req_, at));
  }
  Timestamp reply_ts = at + 1;
  for (const ExternalVertexId amp : amplifiers) {
    inj.edges.push_back(MakeFlow(amp, victim, icmp_echo_reply_, reply_ts));
    ++reply_ts;
  }
  injections_.push_back(std::move(inj));
}

void NetflowGenerator::InjectWorm(Timestamp at, int hops) {
  SW_CHECK_GT(hops, 0);
  Injection inj;
  inj.kind = "worm";
  inj.at = at;
  std::vector<ExternalVertexId> chain = {RandomHost()};
  while (static_cast<int>(chain.size()) < hops + 1) {
    const ExternalVertexId next = RandomHost();
    if (std::find(chain.begin(), chain.end(), next) != chain.end()) continue;
    chain.push_back(next);
  }
  for (int h = 0; h < hops; ++h) {
    inj.edges.push_back(MakeFlow(chain[h], chain[h + 1], exploit_, at + h));
  }
  injections_.push_back(std::move(inj));
}

void NetflowGenerator::InjectPortScan(Timestamp at, int num_targets) {
  SW_CHECK_GT(num_targets, 0);
  Injection inj;
  inj.kind = "port_scan";
  inj.at = at;
  const ExternalVertexId scanner = RandomHost();
  std::vector<ExternalVertexId> targets;
  while (static_cast<int>(targets.size()) < num_targets) {
    const ExternalVertexId t = RandomHost();
    if (t == scanner ||
        std::find(targets.begin(), targets.end(), t) != targets.end()) {
      continue;
    }
    targets.push_back(t);
  }
  for (int i = 0; i < num_targets; ++i) {
    inj.edges.push_back(MakeFlow(scanner, targets[i], syn_probe_, at + i));
  }
  injections_.push_back(std::move(inj));
}

void NetflowGenerator::InjectExfiltration(Timestamp at) {
  Injection inj;
  inj.kind = "exfiltration";
  inj.at = at;
  const ExternalVertexId internal = RandomHost();
  ExternalVertexId staging = RandomHost();
  while (staging == internal) staging = RandomHost();
  ExternalVertexId external = RandomHost();
  while (external == internal || external == staging) {
    external = RandomHost();
  }
  inj.edges.push_back(MakeFlow(internal, staging, copy_, at));
  inj.edges.push_back(MakeFlow(staging, external, upload_, at + 1));
  injections_.push_back(std::move(inj));
}

std::vector<StreamEdge> NetflowGenerator::Generate() {
  SW_CHECK(!generated_) << "Generate() may be called once";
  generated_ = true;

  std::vector<StreamEdge> edges;
  edges.reserve(options_.background_edges);
  // Preferential endpoint pool, as in GeneratePreferentialStream.
  std::vector<ExternalVertexId> pool;
  auto draw = [&]() -> ExternalVertexId {
    if (pool.empty() || rng_.NextBool(0.3)) return RandomHost();
    return pool[rng_.NextBounded(pool.size())];
  };
  for (int i = 0; i < options_.background_edges; ++i) {
    const ExternalVertexId src = draw();
    ExternalVertexId dst = draw();
    if (dst == src) dst = RandomHost();
    const LabelId protocol =
        background_protocols_[protocol_sampler_.Sample(rng_)];
    edges.push_back(
        MakeFlow(src, dst, protocol, i / options_.edges_per_tick));
    pool.push_back(src);
    pool.push_back(dst);
  }
  for (const Injection& inj : injections_) {
    edges.insert(edges.end(), inj.edges.begin(), inj.edges.end());
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const StreamEdge& a, const StreamEdge& b) {
                     return a.ts < b.ts;
                   });
  return edges;
}

}  // namespace streamworks
