#ifndef STREAMWORKS_STREAM_NEWS_GEN_H_
#define STREAMWORKS_STREAM_NEWS_GEN_H_

#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/stream_edge.h"
#include "streamworks/stream/netflow_gen.h"  // Injection

namespace streamworks {

/// New-York-Times-substitute (DESIGN.md §5): a synthetic news/social stream
/// as a multi-relational graph, after the paper's Fig. 2 / §5.2 model.
///
/// Vertices: Article (one per published article), Keyword, Location,
/// Person, Organization. Each keyword belongs to a *topic* ("politics",
/// "sports", ...) and carries the topic as its vertex label, so topic-
/// specialised queries (Fig. 5) are expressible as label constraints.
/// Locations/people/organizations carry their generic labels.
///
/// Edges (article -> entity): hasKeyword, hasLocation, mentionsPerson,
/// mentionsOrg, timestamped by publication tick. Entity popularity is
/// Zipf-skewed, so popular keyword/location pairs co-occur organically —
/// the background against which planted events must be detected.
///
/// InjectEvent plants the Fig. 2 pattern: `num_articles` articles published
/// back-to-back that share one keyword (of a chosen topic) and one
/// location.
class NewsGenerator {
 public:
  struct Options {
    uint64_t seed = 1;
    int num_articles = 2000;
    int num_keywords = 400;
    int num_locations = 150;
    int num_people = 300;
    int num_organizations = 120;
    /// Zipf exponent over entity popularity.
    double entity_skew = 1.0;
    /// Mean number of keyword links per article (>= 1); locations, people
    /// and organizations attach with fixed probabilities.
    double keywords_per_article = 1.6;
    int articles_per_tick = 4;
    std::vector<std::string> topics = {"politics", "sports",   "business",
                                       "accident", "science",  "health"};
  };

  NewsGenerator(const Options& options, Interner* interner);

  // --- External-id scheme (stable, disjoint ranges) -------------------------
  static constexpr ExternalVertexId kArticleBase = 1'000'000'000ull;
  static constexpr ExternalVertexId kKeywordBase = 2'000'000'000ull;
  static constexpr ExternalVertexId kLocationBase = 3'000'000'000ull;
  static constexpr ExternalVertexId kPersonBase = 4'000'000'000ull;
  static constexpr ExternalVertexId kOrganizationBase = 5'000'000'000ull;

  /// Topic name of keyword `rank` (keywords are striped across topics).
  const std::string& TopicOfKeyword(int rank) const {
    return options_.topics[rank % options_.topics.size()];
  }

  /// Plants a Fig. 2 event at time `at`: `num_articles` fresh articles all
  /// linked to one keyword of `topic` and one shared location. Call before
  /// Generate().
  void InjectEvent(Timestamp at, std::string_view topic,
                   int num_articles = 3);

  /// Produces the stream (background + events) in timestamp order. Once.
  std::vector<StreamEdge> Generate();

  const std::vector<Injection>& injections() const { return injections_; }

 private:
  /// Emits the edges of one article given its entity choices.
  void EmitArticle(ExternalVertexId article, Timestamp ts,
                   const std::vector<int>& keyword_ranks, int location_rank,
                   int person_rank, int org_rank,
                   std::vector<StreamEdge>* out) const;

  StreamEdge Link(ExternalVertexId article, ExternalVertexId entity,
                  LabelId entity_label, LabelId edge_label,
                  Timestamp ts) const;

  Options options_;
  Interner* interner_;
  Rng rng_;
  ZipfSampler keyword_sampler_;
  ZipfSampler location_sampler_;
  ZipfSampler person_sampler_;
  ZipfSampler org_sampler_;

  LabelId article_label_;
  LabelId location_label_;
  LabelId person_label_;
  LabelId org_label_;
  LabelId has_keyword_;
  LabelId has_location_;
  LabelId mentions_person_;
  LabelId mentions_org_;
  std::vector<LabelId> topic_labels_;  ///< Vertex label per topic.

  std::vector<Injection> injections_;
  int next_injected_article_ = 0;  ///< Ids above the background range.
  bool generated_ = false;
};

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_NEWS_GEN_H_
