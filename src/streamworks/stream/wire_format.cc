#include "streamworks/stream/wire_format.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "streamworks/common/binio.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

FrameDecodeResult Fail(FrameDecodeStatus status, size_t frame_bytes,
                       std::string error) {
  FrameDecodeResult r;
  r.status = status;
  r.frame_bytes = frame_bytes;
  r.error = std::move(error);
  return r;
}

}  // namespace

bool IsFrameStart(std::string_view buf) {
  return !buf.empty() && buf[0] == kFeedFrameMagic[0];
}

StatusOr<std::string> EncodeFeedFrame(const EdgeBatch& batch,
                                      const Interner& interner) {
  // String table: first-seen order over the batch's label ids, so the
  // frame stays byte-stable for a given batch. Real streams carry a
  // handful of distinct labels, so a linear scan beats a hash map on the
  // per-edge encode path.
  std::vector<LabelId> table;
  const auto index_of = [&](LabelId id) -> uint32_t {
    for (size_t i = 0; i < table.size(); ++i) {
      if (table[i] == id) return static_cast<uint32_t>(i);
    }
    table.push_back(id);
    return static_cast<uint32_t>(table.size() - 1);
  };
  // Pre-resolve indexes in edge order (also sizes the table).
  struct Record {
    uint32_t src_label, dst_label, edge_label;
  };
  std::vector<Record> records;
  records.reserve(batch.size());
  for (const StreamEdge& e : batch) {
    records.push_back({index_of(e.src_label), index_of(e.dst_label),
                       index_of(e.edge_label)});
  }

  std::string body;
  body.reserve(8 + table.size() * 16 + batch.size() * kFeedFrameEdgeBytes);
  PutU32(&body, static_cast<uint32_t>(table.size()));
  for (LabelId id : table) {
    const std::string& name = interner.Name(id);
    if (name.size() > std::numeric_limits<uint16_t>::max()) {
      return Status::InvalidArgument(
          StrCat("label of ", name.size(),
                 " bytes exceeds the frame's u16 string length"));
    }
    PutU16(&body, static_cast<uint16_t>(name.size()));
    body.append(name);
  }
  PutU32(&body, static_cast<uint32_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    const StreamEdge& e = batch[i];
    PutU64(&body, e.src);
    PutU64(&body, e.dst);
    PutU32(&body, records[i].src_label);
    PutU32(&body, records[i].dst_label);
    PutU32(&body, records[i].edge_label);
    PutU64(&body, static_cast<uint64_t>(e.ts));
  }

  if (body.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        StrCat("frame body of ", body.size(),
               " bytes exceeds the u32 length prefix; split the batch"));
  }
  std::string frame;
  frame.reserve(kFeedFrameHeaderBytes + body.size());
  frame.append(kFeedFrameMagic, sizeof(kFeedFrameMagic));
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

Status ParseFeedFields(std::span<const std::string_view> fields,
                       Interner* interner, StreamEdge* edge) {
  if (fields.size() != 6) {
    return Status::InvalidArgument(
        "usage: FEED <src> <SrcLabel> <dst> <DstLabel> <edgeLabel> <ts>");
  }
  if (!ParseUint64(fields[0], &edge->src)) {
    return Status::InvalidArgument("bad src vertex id: " +
                                   std::string(fields[0]));
  }
  edge->src_label = interner->Intern(fields[1]);
  if (!ParseUint64(fields[2], &edge->dst)) {
    return Status::InvalidArgument("bad dst vertex id: " +
                                   std::string(fields[2]));
  }
  edge->dst_label = interner->Intern(fields[3]);
  edge->edge_label = interner->Intern(fields[4]);
  if (!ParseInt64(fields[5], &edge->ts)) {
    return Status::InvalidArgument("bad timestamp: " +
                                   std::string(fields[5]));
  }
  return OkStatus();
}

FrameDecodeResult DecodeFeedFrame(std::string_view buf,
                                  size_t max_body_bytes,
                                  Interner* interner) {
  FrameDecodeResult result;
  if (buf.size() < kFeedFrameHeaderBytes) return result;  // kNeedMore
  if (std::memcmp(buf.data(), kFeedFrameMagic, sizeof(kFeedFrameMagic)) !=
      0) {
    // The lead byte promised a frame but the magic is wrong: there is no
    // length to skip by, so the stream position is lost for good.
    return Fail(FrameDecodeStatus::kMalformed, 0,
                "bad frame magic (stream desynchronized)");
  }
  const size_t body_len = GetU32(buf.data() + 4);
  const size_t frame_bytes = kFeedFrameHeaderBytes + body_len;
  if (body_len > max_body_bytes) {
    return Fail(FrameDecodeStatus::kOversized, frame_bytes,
                StrCat("frame body of ", body_len, " bytes exceeds ",
                       max_body_bytes));
  }
  if (buf.size() < frame_bytes) return result;  // kNeedMore

  const char* p = buf.data() + kFeedFrameHeaderBytes;
  const char* const end = p + body_len;
  const auto malformed = [&](std::string_view why) {
    return Fail(FrameDecodeStatus::kMalformed, frame_bytes,
                StrCat("malformed frame: ", why));
  };

  if (end - p < 4) return malformed("truncated string-table count");
  const uint32_t n_labels = GetU32(p);
  p += 4;
  // A table entry costs at least its 2-byte length, so a count beyond
  // remaining/2 is a lie — reject before reserving (an attacker-chosen
  // n_labels must never size an allocation).
  if (n_labels > static_cast<size_t>(end - p) / 2) {
    return malformed("string-table count exceeds body");
  }
  // Intern each table entry once; every edge in the frame reuses the ids.
  std::vector<LabelId> labels;
  labels.reserve(n_labels);
  for (uint32_t i = 0; i < n_labels; ++i) {
    if (end - p < 2) return malformed("truncated string length");
    const uint16_t len = GetU16(p);
    p += 2;
    if (end - p < len) return malformed("truncated string bytes");
    labels.push_back(interner->Intern(std::string_view(p, len)));
    p += len;
  }

  if (end - p < 4) return malformed("truncated edge count");
  const uint32_t n_edges = GetU32(p);
  p += 4;
  if (static_cast<size_t>(end - p) != n_edges * kFeedFrameEdgeBytes) {
    return malformed(StrCat("body length does not match ", n_edges,
                            " edge records"));
  }
  result.batch.reserve(n_edges);
  for (uint32_t i = 0; i < n_edges; ++i) {
    StreamEdge e;
    e.src = GetU64(p);
    e.dst = GetU64(p + 8);
    const uint32_t src_label = GetU32(p + 16);
    const uint32_t dst_label = GetU32(p + 20);
    const uint32_t edge_label = GetU32(p + 24);
    e.ts = static_cast<Timestamp>(GetU64(p + 28));
    p += kFeedFrameEdgeBytes;
    if (src_label >= labels.size() || dst_label >= labels.size() ||
        edge_label >= labels.size()) {
      return malformed("label index out of string-table range");
    }
    e.src_label = labels[src_label];
    e.dst_label = labels[dst_label];
    e.edge_label = labels[edge_label];
    result.batch.push_back(e);
  }
  result.status = FrameDecodeStatus::kOk;
  result.frame_bytes = frame_bytes;
  return result;
}

}  // namespace streamworks
