#ifndef STREAMWORKS_STREAM_WORKLOAD_QUERIES_H_
#define STREAMWORKS_STREAM_WORKLOAD_QUERIES_H_

#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/graph/query_graph.h"

namespace streamworks {

/// The paper's example queries, ready-built against the label vocabularies
/// of NetflowGenerator and NewsGenerator.

/// Smurf DDoS reflector pattern (paper Fig. 3 / Fig. 7): an attacker sends
/// icmpEchoReq to `num_amplifiers` distinct amplifiers, each of which sends
/// icmpEchoReply to one victim. 2 + num_amplifiers vertices,
/// 2 * num_amplifiers edges.
QueryGraph BuildSmurfQuery(Interner* interner, int num_amplifiers = 3);

/// Worm propagation: a chain of `hops` exploit edges across distinct hosts.
QueryGraph BuildWormQuery(Interner* interner, int hops = 3);

/// Port scan: one scanner probes `num_targets` distinct targets (synProbe).
QueryGraph BuildPortScanQuery(Interner* interner, int num_targets = 4);

/// Data exfiltration: internal -[copy]-> staging -[upload]-> external.
QueryGraph BuildExfiltrationQuery(Interner* interner);

/// The Fig. 2 news query: `num_articles` articles sharing one keyword of
/// the given topic and one location. The keyword vertex carries the topic
/// as its label (NewsGenerator's convention), so the same shape specialises
/// per topic as in Fig. 5 ("politics", "accident", ...).
QueryGraph BuildNewsEventQuery(Interner* interner, std::string_view topic,
                               int num_articles = 3);

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_WORKLOAD_QUERIES_H_
