#ifndef STREAMWORKS_STREAM_NETFLOW_GEN_H_
#define STREAMWORKS_STREAM_NETFLOW_GEN_H_

#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// An attack (or event) planted into a generated stream, with the exact
/// edges that realise it — the ground truth the detection tests check
/// against.
struct Injection {
  std::string kind;          ///< "smurf", "worm", "port_scan", ...
  Timestamp at = 0;          ///< Timestamp of the injection's first edge.
  std::vector<StreamEdge> edges;
};

/// CAIDA-substitute (DESIGN.md §5): a synthetic internet-traffic stream
/// over `num_hosts` hosts partitioned into `num_subnets` subnets.
///
/// Background traffic draws source/destination with preferential attachment
/// (heavy-tailed degrees, like real flow data) and a Zipf-skewed protocol
/// mix over the standard labels (tcpConn most common; icmpEchoReq /
/// icmpEchoReply / synProbe / exploit / copy / upload present as rare noise
/// so attack patterns are non-trivially selective). All vertices carry the
/// "Host" label; multi-relational structure lives in the edge labels, as in
/// flow records.
///
/// Attack motifs (paper Fig. 3) are planted with Inject* before Generate():
///   * Smurf DDoS: attacker -> k amplifiers (icmpEchoReq), each amplifier
///     -> victim (icmpEchoReply), unfolding over a few ticks;
///   * worm propagation: a chain of `hops` exploit edges;
///   * port scan: one scanner -> k distinct targets (synProbe);
///   * exfiltration: internal -[copy]-> staging -[upload]-> external.
///
/// Generation is deterministic for a seed, and injections are recorded as
/// ground truth.
class NetflowGenerator {
 public:
  struct Options {
    uint64_t seed = 1;
    int num_hosts = 256;
    int num_subnets = 8;
    int background_edges = 10000;
    int edges_per_tick = 20;
    /// Zipf exponent over the protocol table (0 = uniform mix).
    double protocol_skew = 1.2;
    /// If false, the background never emits attack-class protocols
    /// (icmpEcho*/synProbe/exploit/copy/upload), so every detection is an
    /// injection. If true (default), those labels occur as noise.
    bool attack_label_noise = true;
  };

  NetflowGenerator(const Options& options, Interner* interner);

  /// Subnet index of a host id.
  int SubnetOf(ExternalVertexId host) const {
    return static_cast<int>(host) / hosts_per_subnet_;
  }
  int hosts_per_subnet() const { return hosts_per_subnet_; }

  // --- Attack injection (call before Generate) -----------------------------
  /// Smurf reflector attack at time `at`: the attacker and victim are drawn
  /// from the given subnets (use -1 for a random subnet).
  void InjectSmurf(Timestamp at, int num_amplifiers, int attacker_subnet = -1,
                   int victim_subnet = -1);
  void InjectWorm(Timestamp at, int hops);
  void InjectPortScan(Timestamp at, int num_targets);
  void InjectExfiltration(Timestamp at);

  /// Produces the full stream: background plus injections, merged in
  /// timestamp order. Can be called once.
  std::vector<StreamEdge> Generate();

  /// Ground truth of everything injected.
  const std::vector<Injection>& injections() const { return injections_; }

 private:
  StreamEdge MakeFlow(ExternalVertexId src, ExternalVertexId dst,
                      LabelId protocol, Timestamp ts) const;
  ExternalVertexId RandomHostInSubnet(int subnet);
  ExternalVertexId RandomHost();

  Options options_;
  Interner* interner_;
  Rng rng_;
  int hosts_per_subnet_;
  LabelId host_label_;
  std::vector<LabelId> background_protocols_;
  ZipfSampler protocol_sampler_;

  LabelId icmp_echo_req_;
  LabelId icmp_echo_reply_;
  LabelId syn_probe_;
  LabelId exploit_;
  LabelId copy_;
  LabelId upload_;

  std::vector<Injection> injections_;
  bool generated_ = false;
};

}  // namespace streamworks

#endif  // STREAMWORKS_STREAM_NETFLOW_GEN_H_
