#ifndef STREAMWORKS_PERSIST_FRAME_LOG_H_
#define STREAMWORKS_PERSIST_FRAME_LOG_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "streamworks/common/statusor.h"
#include "streamworks/common/unique_fd.h"

namespace streamworks {

struct FrameLogOptions {
  /// Rotate to a new segment once the current one reaches this size.
  size_t segment_bytes = 64 << 20;
  /// fsync after every N records; 0 = never (kernel page cache only).
  /// Cluster workers default to 0: a kill -9 keeps every written page
  /// (the crash-recovery contract), and surviving a machine power loss
  /// is the durability tier above this log's job.
  int fsync_every_records = 0;
  /// Replay refuses records larger than this (a record was appended
  /// under the same bound, so hitting it at replay means corruption).
  size_t max_record_bytes = 16 << 20;
};

struct FrameLogStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t segments_created = 0;
};

/// Append-only log of opaque records — the durability spine of a cluster
/// worker, which logs every state-bearing control frame before applying
/// it (see cluster/worker.h). The segment machinery is the PR 5 edge
/// WAL's, generalized: "SWF1"-headed CRC'd segment files named by base
/// sequence, a flock'd single-writer lock, torn-tail truncation on the
/// last segment only, and poison-on-unrollbackable-failure. Unlike the
/// edge WAL the payload is uninterpreted bytes, so one log can carry
/// registrations, batches, exchange items, and watermark commits — the
/// whole inbound state stream, in arrival order.
///
/// Not thread-safe; the worker daemon's single thread owns it.
class FrameLog {
 public:
  /// Opens (creating if needed) the log in `dir`, validating segments and
  /// truncating a torn tail exactly like the edge WAL. After Open,
  /// next_seq() is the number of durable records.
  static StatusOr<std::unique_ptr<FrameLog>> Open(const std::string& dir,
                                                  FrameLogOptions options =
                                                      {});

  /// Appends one record. On return the bytes are written (durable
  /// against process death; against machine death only after Sync).
  Status Append(std::string_view record);

  Status Sync();

  /// Sequence number the next Append gets == records in the log.
  uint64_t next_seq() const { return next_seq_; }
  const FrameLogStats& stats() const { return stats_; }

  /// Streams records [from_seq, end) of the log in `dir` to `fn`. A torn
  /// tail on the last segment is truncated-in-spirit (replay just stops
  /// there); torn bytes anywhere else are DataLoss.
  using ReplayFn = std::function<void(std::string_view record,
                                      uint64_t seq)>;
  static Status Replay(const std::string& dir, uint64_t from_seq,
                       const ReplayFn& fn, FrameLogOptions options = {});

  /// Counts records currently in the log directory without replaying
  /// payloads (0 for a missing directory).
  static StatusOr<uint64_t> CountRecords(const std::string& dir,
                                         FrameLogOptions options = {});

 private:
  FrameLog(std::string dir, FrameLogOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status OpenNewSegment();

  std::string dir_;
  FrameLogOptions options_;
  UniqueFd fd_;
  UniqueFd lock_fd_;
  uint64_t next_seq_ = 0;
  uint64_t current_segment_base_ = 0;
  size_t segment_size_ = 0;
  int records_since_sync_ = 0;
  bool broken_ = false;
  FrameLogStats stats_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_FRAME_LOG_H_
