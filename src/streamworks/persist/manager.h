#ifndef STREAMWORKS_PERSIST_MANAGER_H_
#define STREAMWORKS_PERSIST_MANAGER_H_

#include <memory>
#include <string>

#include "streamworks/persist/durable_backend.h"
#include "streamworks/persist/edge_log.h"
#include "streamworks/persist/snapshot.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// Deployment knobs of the durability subsystem.
struct DurabilityOptions {
  /// Directory holding WAL segments (wal-*.log) and snapshots
  /// (snap-*.snap); created if missing.
  std::string data_dir;
  /// WAL segment rotation size.
  size_t segment_bytes = 64u * 1024 * 1024;
  /// WAL fsync cadence (see EdgeLogOptions::fsync_every_records).
  int fsync_every_records = 0;
  /// Auto-snapshot after this many applied edges; 0 = only explicit
  /// SNAPSHOT requests (and the operator's shutdown snapshot).
  uint64_t snapshot_every_edges = 0;
  /// Delete WAL segments fully covered by a successful snapshot.
  bool prune_wal_on_snapshot = true;
  /// Snapshots kept on disk (newest-first); older ones are deleted after
  /// each successful snapshot. Every snapshot is a full window image, so
  /// without a cap a long-running daemon grows its data dir by one
  /// window per cadence tick forever; a few stay as corruption
  /// fallbacks. Must be >= 1.
  int keep_snapshots = 4;
  /// Replay chunking: recovered WAL edges are re-fed in batches of this
  /// many (the backend's batched fast path).
  size_t replay_batch_edges = 1024;
};

/// What Start() recovered, for banners and tests.
struct RecoveryReport {
  bool snapshot_loaded = false;
  std::string snapshot_path;
  uint64_t snapshot_wal_seq = 0;
  int snapshots_skipped = 0;  ///< Corrupt newer snapshots skipped over.
  uint64_t window_edges = 0;
  uint64_t sessions = 0;
  uint64_t subscriptions = 0;
  uint64_t replayed_edges = 0;   ///< WAL-tail edges re-applied.
  bool wal_tail_truncated = false;
  uint64_t wal_seq = 0;          ///< Where logging resumes.
};

/// Information about one written snapshot.
struct SnapshotInfo {
  std::string path;
  uint64_t wal_seq = 0;
};

/// Orchestrates the two durable pieces — the write-ahead EdgeLog and the
/// engine/service snapshots — over one QueryService + DurableBackend
/// stack:
///
///   recovery (Start):  load the newest valid snapshot -> restore the
///   window into the backend -> re-submit the persisted sessions and
///   subscriptions (each Submit backfills its SJ-Tree from the restored
///   window through the existing suppressed-backfill machinery) ->
///   replay the WAL tail with completions suppressed (those matches were
///   already delivered by the crashed incarnation) -> open the log for
///   appending (truncating any torn tail) and resume.
///
///   steady state:  the DurableBackend appends every fed edge before
///   applying it, and invokes SnapshotNow on the configured cadence.
///
/// Delivery across a crash is at-most-once: matches that were completed
/// but still queued (or in flight on a socket) when the process died are
/// not resurrected — state is, exactly. All calls on the control thread.
class DurabilityManager {
 public:
  /// All pointees must outlive the manager. `backend` is the durable
  /// decorator already wired under `service`.
  DurabilityManager(DurabilityOptions options, QueryService* service,
                    DurableBackend* backend, Interner* interner);

  /// Recovers from data_dir (a missing or empty directory is a fresh
  /// start) and begins logging. One-shot; must run before any tenant
  /// traffic. Installs the snapshot trigger and the service's persist
  /// probe.
  StatusOr<RecoveryReport> Start();

  /// Flushes the backend, snapshots the window + service tables stamped
  /// with the current WAL sequence, atomically installs the file, and
  /// prunes fully covered WAL segments. Callable any time on the control
  /// thread (the SNAPSHOT verb, the auto-cadence, shutdown).
  StatusOr<SnapshotInfo> SnapshotNow();

  /// Counters for STATS (the service's persist probe). Control thread
  /// only, like every other call: it reads the log's live counters.
  PersistCounters counters() const;

  const RecoveryReport& recovery() const { return recovery_; }

 private:
  DurabilityOptions options_;
  QueryService* service_;
  DurableBackend* backend_;
  Interner* interner_;

  std::unique_ptr<EdgeLog> log_;
  bool started_ = false;
  RecoveryReport recovery_;
  uint64_t snapshots_written_ = 0;
  uint64_t snapshot_failures_ = 0;
  uint64_t last_snapshot_wal_seq_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_MANAGER_H_
