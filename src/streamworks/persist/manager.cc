#include "streamworks/persist/manager.h"

#include <filesystem>

#include "streamworks/common/logging.h"

namespace streamworks {

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     QueryService* service,
                                     DurableBackend* backend,
                                     Interner* interner)
    : options_(std::move(options)),
      service_(service),
      backend_(backend),
      interner_(interner) {
  SW_CHECK(!options_.data_dir.empty()) << "durability needs a data dir";
}

StatusOr<RecoveryReport> DurabilityManager::Start() {
  SW_CHECK(!started_) << "DurabilityManager::Start is one-shot";
  started_ = true;

  // 0. Sweep snapshot temp files a crashed (or ENOSPC'd) writer left
  //    behind: never a recovery input (the atomic rename is what
  //    publishes a snapshot), only dead weight.
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(options_.data_dir, ec);
    if (!ec) {
      for (const auto& entry : it) {
        if (entry.path().extension() == ".tmp") {
          std::filesystem::remove(entry.path(), ec);
        }
      }
    }
  }

  // 1. Newest valid snapshot (corrupt ones are skipped — a bad snapshot
  //    costs WAL replay length, never the process).
  uint64_t from_seq = 0;
  auto loaded = LoadLatestSnapshot(options_.data_dir, interner_);
  if (loaded.ok()) {
    const SnapshotContents& contents = loaded->contents;
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_path = loaded->path;
    recovery_.snapshot_wal_seq = contents.wal_seq;
    recovery_.snapshots_skipped = loaded->invalid_skipped;
    recovery_.window_edges = contents.window.edges.size();
    from_seq = contents.wal_seq;

    // 2. Window first (no queries registered yet, so the graph rebuilds
    //    silently), then the control plane: each restored Submit
    //    backfills its SJ-Tree from that window via the engine's
    //    suppressed-backfill machinery.
    SW_RETURN_IF_ERROR(backend_->RestoreWindow(contents.window));
    SW_RETURN_IF_ERROR(service_->RestorePersistState(contents.service));
    recovery_.sessions = contents.service.sessions.size();
    for (const PersistedSession& ps : contents.service.sessions) {
      recovery_.subscriptions += ps.subscriptions.size();
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }

  // 3. WAL tail, completions suppressed: every match completing in this
  //    span was already delivered (or dropped) by the crashed
  //    incarnation — recovery rebuilds state, it does not re-emit.
  //    Logging is off (these edges are already in the log).
  backend_->set_logging_enabled(false);
  backend_->SetSuppressCompletions(true);
  EdgeLogOptions log_options;
  log_options.segment_bytes = options_.segment_bytes;
  log_options.fsync_every_records = options_.fsync_every_records;
  EdgeBatch pending;
  pending.reserve(options_.replay_batch_edges);
  Status replay_failure = OkStatus();
  const auto flush_pending = [&] {
    if (pending.empty()) return;
    const Status applied = backend_->FeedBatch(pending, nullptr);
    // InvalidArgument is the one benign outcome: the WAL logs before
    // apply, so edges the crashed incarnation rejected (time
    // regressions, label clashes) are in the log and re-reject here by
    // design. Anything else means the backend failed to apply state the
    // log promised — recovery must fail loudly, not report success over
    // a diverged window.
    if (!applied.ok() &&
        applied.code() != StatusCode::kInvalidArgument &&
        replay_failure.ok()) {
      replay_failure = applied;
    }
    pending.clear();
  };
  auto replayed = EdgeLog::Replay(
      options_.data_dir, from_seq, interner_,
      [&](const EdgeBatch& batch, uint64_t) {
        for (const StreamEdge& e : batch) {
          pending.push_back(e);
          if (pending.size() >= options_.replay_batch_edges) {
            flush_pending();
          }
        }
      },
      log_options);
  if (!replayed.ok()) {
    backend_->SetSuppressCompletions(false);
    backend_->set_logging_enabled(true);
    return replayed.status();
  }
  flush_pending();
  backend_->Flush();
  backend_->SetSuppressCompletions(false);
  backend_->set_logging_enabled(true);
  SW_RETURN_IF_ERROR(replay_failure);
  recovery_.replayed_edges = replayed->edges_replayed;
  recovery_.wal_tail_truncated = replayed->tail_truncated;

  // 4. Open the log for appending (truncates the torn tail the replay
  //    tolerated) and resume steady-state durability. Open re-scans the
  //    last segment that Replay just validated — a deliberate, bounded
  //    redundancy (one segment, <= segment_bytes) kept so the two APIs
  //    stay independently usable; fold ReplayStats into Open if startup
  //    time at huge segments ever matters.
  SW_ASSIGN_OR_RETURN(
      log_, EdgeLog::Open(options_.data_dir, interner_, log_options,
                          /*min_seq=*/std::max(replayed->next_seq,
                                               from_seq)));
  recovery_.wal_seq = log_->next_seq();
  backend_->set_log(log_.get());
  if (options_.snapshot_every_edges > 0) {
    backend_->set_snapshot_trigger(
        options_.snapshot_every_edges, [this] { SnapshotNow().ok(); });
  }
  service_->set_persist_probe([this] { return counters(); });
  return recovery_;
}

StatusOr<SnapshotInfo> DurabilityManager::SnapshotNow() {
  SW_CHECK(started_) << "Start() before SnapshotNow()";
  if (log_ == nullptr) {
    // started_ flips before recovery runs; a failed Start() leaves no
    // log. An embedder (or a stale SNAPSHOT hook) must get a status,
    // not a null dereference.
    return Status::FailedPrecondition(
        "recovery did not complete; the durability layer is inactive");
  }
  // Everything logged must be applied before the export, so the stamped
  // sequence and the exported state agree exactly.
  backend_->Flush();
  auto window = backend_->ExportWindow();
  if (!window.ok()) {
    ++snapshot_failures_;
    return window.status();
  }
  SnapshotContents contents;
  contents.wal_seq = log_->next_seq();
  contents.window = std::move(window).value();
  contents.service = service_->ExportPersistState();
  auto written =
      WriteSnapshotFile(options_.data_dir, contents, *interner_);
  if (!written.ok()) {
    ++snapshot_failures_;
    return written.status();
  }
  ++snapshots_written_;
  last_snapshot_wal_seq_ = contents.wal_seq;
  if (options_.prune_wal_on_snapshot) {
    // The snapshot is durable; segments below it are dead weight. A
    // failed prune is an operability wart, not a correctness problem —
    // same for superseded snapshot files beyond the fallback budget.
    log_->PruneSegmentsBelow(contents.wal_seq).ok();
  }
  PruneSnapshots(options_.data_dir, options_.keep_snapshots).ok();
  return SnapshotInfo{std::move(written).value(), contents.wal_seq};
}

PersistCounters DurabilityManager::counters() const {
  PersistCounters c;
  c.enabled = true;
  if (log_ != nullptr) {
    const EdgeLogStats& stats = log_->stats();
    c.wal_seq = log_->next_seq();
    c.wal_records = stats.records_appended;
    c.wal_edges = stats.edges_appended;
    c.wal_bytes = stats.bytes_appended;
    c.wal_segments = log_->num_segments();
    c.wal_fsyncs = stats.fsyncs;
  }
  c.snapshots_written = snapshots_written_;
  c.snapshot_failures = snapshot_failures_;
  c.last_snapshot_wal_seq = last_snapshot_wal_seq_;
  c.recovered_window_edges = recovery_.window_edges;
  c.recovered_sessions = recovery_.sessions;
  c.recovered_subscriptions = recovery_.subscriptions;
  c.replayed_edges = recovery_.replayed_edges;
  return c;
}

}  // namespace streamworks
