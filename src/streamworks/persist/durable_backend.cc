#include "streamworks/persist/durable_backend.h"

namespace streamworks {

Status DurableBackend::LogEdges(const EdgeBatch& batch) {
  if (log_ == nullptr || !logging_enabled_) return OkStatus();
  return log_->Append(batch);
}

void DurableBackend::MaybeTriggerSnapshot(size_t edges_applied) {
  if (snapshot_every_edges_ == 0 || !snapshot_trigger_ ||
      in_snapshot_trigger_) {
    return;
  }
  edges_since_snapshot_ += edges_applied;
  if (edges_since_snapshot_ < snapshot_every_edges_) return;
  edges_since_snapshot_ = 0;
  // The trigger quiesces this very backend (Flush + ExportWindow); the
  // guard keeps a hypothetical re-entrant feed from stacking snapshots.
  in_snapshot_trigger_ = true;
  snapshot_trigger_();
  in_snapshot_trigger_ = false;
}

Status DurableBackend::Feed(const StreamEdge& edge) {
  scratch_.assign(1, edge);
  // Log-before-apply: the edge must be durable (in the log's buffer, at
  // least — fsync cadence is the operator's call) before the engine can
  // observably act on it. A failed append fails the feed: accepting an
  // edge the WAL lost would silently break the recovery contract.
  SW_RETURN_IF_ERROR(LogEdges(scratch_));
  const Status status = inner_->Feed(edge);
  MaybeTriggerSnapshot(1);
  return status;
}

Status DurableBackend::FeedBatch(const EdgeBatch& batch,
                                 size_t* rejected_out) {
  SW_RETURN_IF_ERROR(LogEdges(batch));
  const Status status = inner_->FeedBatch(batch, rejected_out);
  MaybeTriggerSnapshot(batch.size());
  return status;
}

}  // namespace streamworks
