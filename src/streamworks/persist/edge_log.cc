#include "streamworks/persist/edge_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <vector>

#include "streamworks/common/binio.h"
#include "streamworks/common/str_util.h"
#include "streamworks/persist/crc32.h"
#include "streamworks/persist/fs_util.h"

namespace streamworks {

namespace {

constexpr char kSegmentMagic[4] = {'S', 'W', 'L', '1'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 20;
constexpr size_t kRecordHeaderBytes = 8;  // len u32 + crc u32

std::string SegmentName(uint64_t base_seq) {
  return SeqFileName("wal-", base_seq, ".log");
}

/// Segment paths in `dir`, ascending by base sequence.
StatusOr<std::vector<std::pair<uint64_t, std::filesystem::path>>>
ListSegments(const std::string& dir) {
  return ListSeqFiles(dir, "wal-", ".log");
}

/// Validates a segment header. Returns the declared base sequence.
StatusOr<uint64_t> CheckSegmentHeader(std::string_view bytes,
                                      const std::string& what) {
  if (bytes.size() < kSegmentHeaderBytes) {
    return Status::DataLoss(what + ": short segment header");
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss(what + ": bad segment magic");
  }
  if (GetU32(bytes.data() + 4) != kSegmentVersion) {
    return Status::DataLoss(what + ": unsupported segment version");
  }
  const uint32_t crc = GetU32(bytes.data() + 16);
  if (Crc32(bytes.substr(0, 16)) != crc) {
    return Status::DataLoss(what + ": segment header CRC mismatch");
  }
  return GetU64(bytes.data() + 8);
}

struct SegmentScan {
  uint64_t next_seq = 0;      ///< One past the last valid edge.
  size_t valid_bytes = 0;     ///< Offset of the first invalid byte.
  bool tail_truncated = false;
};

/// Walks a segment's records, delivering each decoded batch to `fn` (null
/// fn = validate only). Stops at the first torn/corrupt record, reporting
/// where. `expect_seq` checks record-sequence continuity.
StatusOr<SegmentScan> ScanSegment(std::string_view bytes,
                                  uint64_t base_seq, uint64_t from_seq,
                                  Interner* interner,
                                  size_t max_frame_body_bytes,
                                  const EdgeLog::ReplayFn* fn,
                                  const std::string& what) {
  SegmentScan scan;
  scan.next_seq = base_seq;
  scan.valid_bytes = kSegmentHeaderBytes;
  size_t pos = kSegmentHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) {
      scan.tail_truncated = true;
      return scan;
    }
    const uint32_t len = GetU32(bytes.data() + pos);
    const uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len < 8 || bytes.size() - pos - kRecordHeaderBytes < len) {
      scan.tail_truncated = true;
      return scan;
    }
    const std::string_view payload =
        bytes.substr(pos + kRecordHeaderBytes, len);
    if (Crc32(payload) != crc) {
      scan.tail_truncated = true;
      return scan;
    }
    const uint64_t first_seq = GetU64(payload.data());
    if (first_seq != scan.next_seq) {
      return Status::DataLoss(
          StrCat(what, ": record sequence jumped from ", scan.next_seq,
                 " to ", first_seq));
    }
    const std::string_view frame = payload.substr(8);
    FrameDecodeResult decoded =
        DecodeFeedFrame(frame, max_frame_body_bytes, interner);
    if (decoded.status != FrameDecodeStatus::kOk ||
        decoded.frame_bytes != frame.size()) {
      // The CRC passed, so this is not a torn write — the record was
      // encoded wrong (or the format changed). Refuse to guess.
      return Status::DataLoss(StrCat(what, ": undecodable WAL record at ",
                                     pos, ": ", decoded.error));
    }
    if (fn != nullptr && !decoded.batch.empty()) {
      if (first_seq >= from_seq) {
        (*fn)(decoded.batch, first_seq);
      } else if (first_seq + decoded.batch.size() > from_seq) {
        // The record straddles the snapshot stamp: deliver only the tail.
        EdgeBatch trimmed(
            decoded.batch.begin() +
                static_cast<ptrdiff_t>(from_seq - first_seq),
            decoded.batch.end());
        (*fn)(trimmed, from_seq);
      }
    }
    scan.next_seq += decoded.batch.size();
    pos += kRecordHeaderBytes + len;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace

StatusOr<std::unique_ptr<EdgeLog>> EdgeLog::Open(const std::string& dir,
                                                 const Interner* interner,
                                                 EdgeLogOptions options,
                                                 uint64_t min_seq) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create WAL dir " + dir + ": " +
                           ec.message());
  }
  auto log = std::unique_ptr<EdgeLog>(new EdgeLog(dir, interner, options));
  log->next_seq_ = min_seq;

  // Single-writer lock: two processes appending into the same segments
  // would interleave bytes and destroy record framing for both — ACKed,
  // even fsynced, edges included. The O_EXCL on segment creation only
  // guards the create path; this guards the whole directory for the
  // log's lifetime (the fd releases the flock on close).
  const std::filesystem::path lock_path =
      std::filesystem::path(dir) / "wal.lock";
  const int lock_fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd < 0) {
    return Status::IoError(StrCat("cannot open WAL lock ",
                                  lock_path.string(), ": ",
                                  std::strerror(errno)));
  }
  log->lock_fd_.reset(lock_fd);
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(
        "another process holds the WAL at " + dir +
        " (two writers would corrupt acknowledged records)");
  }

  SW_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  log->num_segments_ = segments.size();

  // Older segments were sealed (fsynced) by rotation; only the last one
  // can carry crash damage. A torn *tail* is truncated away; a torn
  // *header* (a crash inside OpenNewSegment, before any record landed)
  // means the whole file is garbage past the durable end — drop it and
  // fall back to the now-last segment, exactly mirroring what Replay
  // tolerates. Recovery must never be wedged by the debris of the very
  // crash it exists to absorb.
  while (!segments.empty()) {
    const auto& [base, path] = segments.back();
    SW_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
    auto base_or = CheckSegmentHeader(bytes, path.string());
    if (!base_or.ok() || base_or.value() != base) {
      std::filesystem::remove(path, ec);
      if (ec) {
        return Status::IoError("cannot drop torn WAL segment " +
                               path.string() + ": " + ec.message());
      }
      segments.pop_back();
      --log->num_segments_;
      continue;
    }
    // Validate record-by-record (decoding into a scratch interner so
    // Open has no side effects on the caller's label space) and truncate
    // whatever a crash left half-written.
    Interner scratch;
    SW_ASSIGN_OR_RETURN(
        const SegmentScan scan,
        ScanSegment(bytes, base, /*from_seq=*/0, &scratch,
                    options.max_frame_body_bytes, nullptr, path.string()));
    if (scan.valid_bytes < bytes.size()) {
      std::filesystem::resize_file(path, scan.valid_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn WAL tail of " +
                               path.string() + ": " + ec.message());
      }
    }
    if (scan.next_seq < log->next_seq_) {
      // The durable WAL ends before min_seq (a snapshot outlived pruned
      // or lost segments). Keep the fast-forwarded cursor and leave fd_
      // closed so the next append starts a fresh segment based there.
      return log;
    }
    log->next_seq_ = scan.next_seq;

    // Reopen the last segment for appending (rotation will take over
    // once it fills).
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError(StrCat("cannot reopen WAL segment ",
                                    path.string(), ": ",
                                    std::strerror(errno)));
    }
    log->fd_.reset(fd);
    log->segment_size_ = scan.valid_bytes;
    log->current_segment_base_ = base;
    break;
  }
  return log;
}

Status EdgeLog::OpenNewSegment() {
  const std::filesystem::path path =
      std::filesystem::path(dir_) / SegmentName(next_seq_);
  // O_EXCL guards against two logs on one directory; a leftover from a
  // *failed* rotation attempt of this very log was unlinked below, so a
  // retry after a transient error (ENOSPC freed, say) takes this path
  // cleanly instead of wedging on EEXIST forever.
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(StrCat("cannot create WAL segment ",
                                  path.string(), ": ",
                                  std::strerror(errno)));
  }
  fd_.reset(fd);
  std::string header;
  header.append(kSegmentMagic, sizeof(kSegmentMagic));
  PutU32(&header, kSegmentVersion);
  PutU64(&header, next_seq_);
  PutU32(&header, Crc32(header));
  if (Status written = WriteAll(fd_.get(), header); !written.ok()) {
    // Roll the half-created segment back entirely so the next append
    // can retry rotation at the same sequence.
    fd_.reset();
    ::unlink(path.c_str());
    return written;
  }
  // Make the directory entry durable too: the records appended next may
  // be fsynced, but a machine crash that forgets the *file* would lose
  // them all with no DataLoss signal (the vanished segment would look
  // like a clean log end).
  FsyncDir(dir_);
  current_segment_base_ = next_seq_;
  segment_size_ = header.size();
  stats_.bytes_appended += header.size();
  ++stats_.segments_created;
  ++num_segments_;
  return OkStatus();
}

Status EdgeLog::Append(const EdgeBatch& batch) {
  if (batch.empty()) return OkStatus();
  if (broken_) {
    return Status::IoError(
        "WAL poisoned: an earlier failed append could not be rolled "
        "back, so further appends would land after torn bytes and be "
        "silently dropped by replay");
  }
  if (!fd_.valid() || segment_size_ >= options_.segment_bytes) {
    if (fd_.valid()) {
      // Seal the outgoing segment: its bytes must be durable before the
      // successor exists, or replay could see a gap.
      SW_RETURN_IF_ERROR(Sync());
    }
    SW_RETURN_IF_ERROR(OpenNewSegment());
  }
  SW_ASSIGN_OR_RETURN(const std::string frame,
                      EncodeFeedFrame(batch, *interner_));
  // Replay decodes each record under max_frame_body_bytes; a record
  // written past that bound would be ACKed today and poison the whole
  // directory on the next restart (valid CRC, so no torn-tail tolerance
  // applies — just DataLoss forever). A giant in-process batch is
  // split instead; a single edge always fits (three u16-bounded labels
  // cap a one-edge frame far below any sane limit).
  if (frame.size() - kFeedFrameHeaderBytes > options_.max_frame_body_bytes) {
    if (batch.size() <= 1) {
      return Status::InvalidArgument(
          StrCat("one-edge WAL record of ", frame.size(),
                 " bytes exceeds max_frame_body_bytes (",
                 options_.max_frame_body_bytes,
                 "); raise the limit — replay would reject the record"));
    }
    return AppendSplit(batch);
  }
  // One buffer: [len u32][crc u32][first_seq u64][frame...], the length
  // and CRC patched over their placeholders once the payload is in
  // place — this runs per Feed on the durable ingest path, so redundant
  // copies of the edge bytes would show up.
  std::string record;
  record.reserve(kRecordHeaderBytes + 8 + frame.size());
  PutU32(&record, 0);  // len placeholder
  PutU32(&record, 0);  // crc placeholder
  PutU64(&record, next_seq_);
  record.append(frame);
  const std::string_view payload =
      std::string_view(record).substr(kRecordHeaderBytes);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    record[static_cast<size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xFF);
    record[static_cast<size_t>(4 + i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  if (Status written = WriteAll(fd_.get(), record); !written.ok()) {
    // Roll the partial record back so a later successful append can
    // never land after torn bytes (replay's tail-truncation would then
    // silently discard it, ACKed or not). If even the rollback fails,
    // poison the log: failing every future append loudly beats quietly
    // losing acknowledged edges.
    if (::ftruncate(fd_.get(), static_cast<off_t>(segment_size_)) != 0) {
      broken_ = true;
    }
    return written;
  }

  const size_t pre_record_size = segment_size_;
  segment_size_ += record.size();
  next_seq_ += batch.size();
  ++stats_.records_appended;
  stats_.edges_appended += batch.size();
  stats_.bytes_appended += record.size();
  if (options_.fsync_every_records > 0 &&
      ++records_since_sync_ >= options_.fsync_every_records) {
    if (Status synced = Sync(); !synced.ok()) {
      // The feed is about to be failed, so the record must not survive
      // either: a CRC-valid record for an edge the tenant was told
      // failed would be applied at recovery, breaking crash
      // equivalence. Same rollback-or-poison discipline as a failed
      // write.
      if (::ftruncate(fd_.get(),
                      static_cast<off_t>(pre_record_size)) == 0) {
        segment_size_ = pre_record_size;
        next_seq_ -= batch.size();
        --stats_.records_appended;
        stats_.edges_appended -= batch.size();
        stats_.bytes_appended -= record.size();
      } else {
        broken_ = true;
      }
      return synced;
    }
  }
  return OkStatus();
}

Status EdgeLog::AppendSplit(const EdgeBatch& batch) {
  // Checkpoint the whole log position: the halves may rotate into fresh
  // segments, and a later half failing after an earlier one succeeded
  // must not leave a durable record for edges whose feed is being
  // failed (replay would apply them, diverging from the live engine).
  const uint64_t cp_base = current_segment_base_;
  const size_t cp_size = segment_size_;
  const uint64_t cp_seq = next_seq_;
  const uint64_t cp_segments = num_segments_;
  const EdgeLogStats cp_stats = stats_;
  const bool cp_had_fd = fd_.valid();

  const size_t half = batch.size() / 2;
  Status status = Append(
      EdgeBatch(batch.begin(), batch.begin() + static_cast<ptrdiff_t>(half)));
  if (status.ok()) {
    status = Append(EdgeBatch(batch.begin() + static_cast<ptrdiff_t>(half),
                              batch.end()));
  }
  if (status.ok() || next_seq_ == cp_seq) return status;

  // Partial failure: unwind to the checkpoint — delete segments the
  // split created, truncate the checkpoint segment back, restore the
  // cursor — or poison if the unwind itself fails.
  const auto poison = [&] {
    broken_ = true;
    return status;
  };
  auto segments = ListSegments(dir_);
  if (!segments.ok()) return poison();
  for (const auto& [base, path] : segments.value()) {
    // Created by the split = past the checkpoint segment (or, when no
    // segment was open at the checkpoint, at/past the checkpoint seq).
    const bool created_by_split =
        cp_had_fd ? base > cp_base : base >= cp_seq;
    if (!created_by_split) continue;
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) return poison();
  }
  if (cp_had_fd) {
    const std::filesystem::path cp_path =
        std::filesystem::path(dir_) / SegmentName(cp_base);
    const int fd = ::open(cp_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) return poison();
    fd_.reset(fd);
    if (::ftruncate(fd_.get(), static_cast<off_t>(cp_size)) != 0) {
      return poison();
    }
  } else {
    fd_.reset();
  }
  current_segment_base_ = cp_base;
  segment_size_ = cp_size;
  next_seq_ = cp_seq;
  num_segments_ = cp_segments;
  stats_ = cp_stats;
  return status;
}

Status EdgeLog::Sync() {
  if (!fd_.valid()) return OkStatus();
  if (::fsync(fd_.get()) != 0) {
    // A failed fsync may have marked dirty pages clean (the Linux
    // fsync-gate problem): earlier cadence-ACKed records can now be
    // lost by a machine crash even though a *retry* would report
    // success. Nothing short of a restart (which re-reads the durable
    // truth) makes this log trustworthy again — poison it.
    broken_ = true;
    return Status::IoError(StrCat("WAL fsync failed: ",
                                  std::strerror(errno)));
  }
  records_since_sync_ = 0;
  ++stats_.fsyncs;
  return OkStatus();
}

StatusOr<int> EdgeLog::PruneSegmentsBelow(uint64_t seq) {
  SW_ASSIGN_OR_RETURN(auto segments, ListSegments(dir_));
  int deleted = 0;
  // Segment i holds edges [base_i, base_{i+1}); it is fully covered by a
  // snapshot at `seq` iff its successor's base is <= seq. The last
  // segment always survives (it is open for append).
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > seq) break;
    std::error_code ec;
    std::filesystem::remove(segments[i].second, ec);
    if (ec) {
      return Status::IoError("cannot prune WAL segment " +
                             segments[i].second.string() + ": " +
                             ec.message());
    }
    ++deleted;
    --num_segments_;
  }
  return deleted;
}

StatusOr<EdgeLog::ReplayStats> EdgeLog::Replay(const std::string& dir,
                                               uint64_t from_seq,
                                               Interner* interner,
                                               const ReplayFn& fn,
                                               EdgeLogOptions options) {
  ReplayStats stats;
  stats.next_seq = from_seq;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return stats;
  SW_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  if (segments.empty()) return stats;

  uint64_t replayed = 0;
  const ReplayFn counted = [&](const EdgeBatch& batch, uint64_t first_seq) {
    replayed += batch.size();
    fn(batch, first_seq);
  };
  // End of the previous *scanned* segment: consecutive scanned segments
  // must be seamless, or a lost/deleted sealed segment in the middle
  // would silently swallow its edges. (Skipped segments sit wholly below
  // from_seq — a gap after one is below from_seq too, hence harmless.)
  std::optional<uint64_t> prev_end;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, path] = segments[i];
    const bool last = i + 1 == segments.size();
    // A whole segment below from_seq is already covered by the snapshot;
    // skip the decode (its successor's base bounds its content).
    if (!last && segments[i + 1].first <= from_seq) continue;
    if (prev_end.has_value() && base != *prev_end) {
      return Status::DataLoss(
          StrCat(path.string(), ": WAL gap — previous segment ends at ",
                 *prev_end, " but this one starts at ", base));
    }
    // The first scanned segment must reach back to from_seq: pruning
    // always keeps the segment containing the snapshot stamp, so a
    // first base beyond from_seq means records in [from_seq, base) are
    // simply gone.
    if (!prev_end.has_value() && base > from_seq) {
      return Status::DataLoss(
          StrCat(path.string(), ": WAL starts at ", base,
                 " but replay needs records from ", from_seq));
    }

    SW_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
    auto base_or = CheckSegmentHeader(bytes, path.string());
    if (!base_or.ok() || base_or.value() != base) {
      if (last) {
        // A crash can tear even the header of a freshly rotated segment;
        // everything before it already replayed.
        stats.tail_truncated = true;
        break;
      }
      return base_or.ok()
                 ? Status::DataLoss(path.string() +
                                    ": filename and header disagree")
                 : base_or.status();
    }
    auto scan_or = ScanSegment(bytes, base, from_seq, interner,
                               options.max_frame_body_bytes, &counted,
                               path.string());
    SW_RETURN_IF_ERROR(scan_or.status());
    const SegmentScan& scan = scan_or.value();
    if (scan.tail_truncated) {
      if (!last) {
        return Status::DataLoss(path.string() +
                                ": torn record in a sealed WAL segment");
      }
      stats.tail_truncated = true;
    }
    prev_end = scan.next_seq;
    stats.next_seq = std::max(stats.next_seq, scan.next_seq);
  }
  stats.edges_replayed = replayed;
  return stats;
}

}  // namespace streamworks
