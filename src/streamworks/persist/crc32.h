#ifndef STREAMWORKS_PERSIST_CRC32_H_
#define STREAMWORKS_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace streamworks {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`. The
/// on-disk durability formats checksum every WAL record and the whole
/// snapshot body with it, so a torn write or bit rot is detected before
/// any bytes are trusted. `seed` chains incremental computations: pass a
/// previous result to extend it over more data.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_CRC32_H_
