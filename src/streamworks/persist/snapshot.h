#ifndef STREAMWORKS_PERSIST_SNAPSHOT_H_
#define STREAMWORKS_PERSIST_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/core/engine.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// Everything one snapshot file holds: the engine window (in external-id
/// form, with preserved edge ids), the service control plane (open
/// sessions + live subscriptions, query patterns included), and the WAL
/// sequence the state corresponds to. Recovery = load this, restore the
/// window, re-submit the subscriptions (backfilling their SJ-Trees from
/// the window), then replay the WAL from `wal_seq` with completions
/// suppressed.
struct SnapshotContents {
  uint64_t wal_seq = 0;
  WindowSnapshot window;
  ServicePersistState service;
};

/// On-disk snapshot layout (`snap-<wal_seq:016x>.snap`, integers LE):
///
///   magic    4 bytes  "SWSN"
///   version  u32      1
///   wal_seq  u64
///   next_edge_id u64
///   watermark    i64
///   string table  u32 n + n x {u16 len, bytes}   — every label name,
///                 interned once per file (the FEEDB string-table idiom)
///   window edges  u64 n + n x {id u64, src u64, dst u64,
///                 src_label u32, dst_label u32, edge_label u32, ts i64}
///                 (the FEEDB record layout + the ingest id), ascending id
///   sessions      u32 n + per session {name, u32 n_subs + per sub
///                 {tag, query_name, u16 nv + nv x u32 vertex_label,
///                  u16 ne + ne x {u16 src, u16 dst, u32 label},
///                  window i64, strategy name, capacity u64, policy name,
///                  paused u8}}     — strings as {u16 len, bytes}
///   crc      u32      CRC-32 of every byte above
///
/// Files are written to a temp name and atomically renamed, so a reader
/// never sees a half-written snapshot under the final name; the trailing
/// CRC catches the remaining failure modes (torn rename-over on a dying
/// kernel, bit rot). The loader walks snapshots newest-first and falls
/// back to the previous one when validation fails — a bad snapshot can
/// cost recovery freshness (more WAL to replay), never a crash.

/// Serializes `contents` to one self-contained snapshot blob. Label ids
/// inside `contents` are resolved through `interner`. InvalidArgument
/// when a string (label, session name, tag — possibly tenant-chosen)
/// exceeds the format's u16 length: a snapshot failure, never a crash.
StatusOr<std::string> EncodeSnapshot(const SnapshotContents& contents,
                                     const Interner& interner);

/// Strictly validates and decodes one snapshot blob (every declared
/// length is bounds-checked against the bytes actually present; the CRC
/// must match). Labels are interned into `interner`.
StatusOr<SnapshotContents> DecodeSnapshot(std::string_view bytes,
                                          Interner* interner);

/// Atomically writes `contents` into `dir` (created if missing) as
/// snap-<wal_seq>.snap via temp-file + rename (+ fsync of file and
/// directory). Returns the final path.
StatusOr<std::string> WriteSnapshotFile(const std::string& dir,
                                        const SnapshotContents& contents,
                                        const Interner& interner);

struct SnapshotLoadResult {
  SnapshotContents contents;
  std::string path;        ///< File the contents came from.
  int invalid_skipped = 0; ///< Newer snapshots rejected as corrupt.
};

/// Loads the newest valid snapshot in `dir`, skipping (and counting)
/// corrupt ones. NotFound when the directory holds no usable snapshot
/// (including when it does not exist) — a fresh start, not an error.
StatusOr<SnapshotLoadResult> LoadLatestSnapshot(const std::string& dir,
                                                Interner* interner);

/// Deletes all but the `keep_newest` highest-sequence snapshot files in
/// `dir` (each snapshot is a full window image, so a long-running daemon
/// would otherwise grow its data dir by one window per cadence tick
/// forever; a few are kept as corruption fallbacks). Returns how many
/// were deleted. keep_newest == 0 is refused (InvalidArgument) — the
/// newest snapshot is the recovery point, not garbage.
StatusOr<int> PruneSnapshots(const std::string& dir, int keep_newest);

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_SNAPSHOT_H_
