#ifndef STREAMWORKS_PERSIST_DURABLE_BACKEND_H_
#define STREAMWORKS_PERSIST_DURABLE_BACKEND_H_

#include <functional>

#include "streamworks/persist/edge_log.h"
#include "streamworks/service/backend.h"

namespace streamworks {

/// QueryBackend decorator that makes ingest durable: every Feed /
/// FeedBatch is appended to the write-ahead EdgeLog *before* it is
/// applied to the inner backend (log-before-apply — a crash after the
/// append but before the apply replays the edge; the reverse order would
/// lose it). Everything else passes through, so the service layer is
/// oblivious: durability is a deployment choice made where the backend
/// stack is assembled, exactly like sharding.
///
/// The decorator also owns the snapshot cadence: after every
/// `snapshot_every_edges` applied edges it invokes the installed trigger
/// (the DurabilityManager's SnapshotNow) synchronously on the control
/// thread — the only thread allowed to quiesce the backend and walk the
/// service tables.
class DurableBackend : public QueryBackend {
 public:
  /// `inner` must outlive the backend. The log may be attached later
  /// (set_log) because recovery replays *through* this backend before
  /// the log is opened for appending.
  explicit DurableBackend(QueryBackend* inner) : inner_(inner) {}

  void set_log(EdgeLog* log) { log_ = log; }

  /// While disabled, Feed/FeedBatch skip the WAL append (recovery replay:
  /// those edges are already in the log).
  void set_logging_enabled(bool enabled) { logging_enabled_ = enabled; }

  /// Auto-snapshot cadence: after >= `every_edges` edges applied since
  /// the last trigger, `fn` runs on the control thread. 0 disables.
  void set_snapshot_trigger(uint64_t every_edges,
                            std::function<void()> fn) {
    snapshot_every_edges_ = every_edges;
    snapshot_trigger_ = std::move(fn);
  }

  StatusOr<int> Register(const QueryGraph& query,
                         DecompositionStrategy strategy, Timestamp window,
                         MatchCallback callback) override {
    return inner_->Register(query, strategy, window, std::move(callback));
  }
  Status Unregister(int query_id) override {
    return inner_->Unregister(query_id);
  }
  StatusOr<QueryRuntimeInfo> Info(int query_id) override {
    return inner_->Info(query_id);
  }
  Status Feed(const StreamEdge& edge) override;
  Status FeedBatch(const EdgeBatch& batch, size_t* rejected_out) override;
  void Flush() override { inner_->Flush(); }
  std::vector<ShardLoadSnapshot> ShardLoads() override {
    return inner_->ShardLoads();
  }
  StatusOr<WindowSnapshot> ExportWindow() override {
    return inner_->ExportWindow();
  }
  Status RestoreWindow(const WindowSnapshot& snapshot) override {
    return inner_->RestoreWindow(snapshot);
  }
  void SetSuppressCompletions(bool suppress) override {
    inner_->SetSuppressCompletions(suppress);
  }

 private:
  /// WAL append for one ingest call; scratch_ batches single edges.
  Status LogEdges(const EdgeBatch& batch);
  void MaybeTriggerSnapshot(size_t edges_applied);

  QueryBackend* inner_;
  EdgeLog* log_ = nullptr;
  bool logging_enabled_ = true;
  uint64_t snapshot_every_edges_ = 0;
  uint64_t edges_since_snapshot_ = 0;
  bool in_snapshot_trigger_ = false;
  std::function<void()> snapshot_trigger_;
  EdgeBatch scratch_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_DURABLE_BACKEND_H_
