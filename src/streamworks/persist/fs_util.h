#ifndef STREAMWORKS_PERSIST_FS_UTIL_H_
#define STREAMWORKS_PERSIST_FS_UTIL_H_

#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "streamworks/common/statusor.h"

namespace streamworks {

/// Whole-file read (binary). IoError on open/read failure.
StatusOr<std::string> ReadFileToString(const std::filesystem::path& path);

/// EINTR-safe full write of `bytes` to `fd`. IoError on failure (the
/// caller decides what to do with any partial prefix already written).
Status WriteAll(int fd, std::string_view bytes);

/// Best-effort directory fsync: makes directory-entry changes (a created
/// segment, a renamed snapshot) durable against machine death. Some
/// filesystems refuse O_RDONLY fsync on directories — those errors are
/// swallowed, file *data* durability never depends on this.
void FsyncDir(const std::string& dir);

/// "<prefix><seq as 16 lowercase hex digits><suffix>" — the naming scheme
/// both durable artifact kinds share (wal-…log segments, snap-…snap
/// files), so lexicographic filename order is sequence order.
std::string SeqFileName(std::string_view prefix, uint64_t seq,
                        std::string_view suffix);

/// Inverse of SeqFileName; false for anything shaped differently.
bool ParseSeqFileName(std::string_view name, std::string_view prefix,
                      std::string_view suffix, uint64_t* seq);

/// Every SeqFileName-shaped file in `dir`, ascending by sequence (callers
/// wanting newest-first iterate in reverse). IoError when the directory
/// cannot be listed; unrelated files are ignored.
StatusOr<std::vector<std::pair<uint64_t, std::filesystem::path>>>
ListSeqFiles(const std::string& dir, std::string_view prefix,
             std::string_view suffix);

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_FS_UTIL_H_
