#ifndef STREAMWORKS_PERSIST_EDGE_LOG_H_
#define STREAMWORKS_PERSIST_EDGE_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/unique_fd.h"
#include "streamworks/graph/stream_edge.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

/// Knobs of an EdgeLog.
struct EdgeLogOptions {
  /// Rotate to a fresh segment once the current one exceeds this size.
  size_t segment_bytes = 64u * 1024 * 1024;
  /// fsync cadence: 0 never (page cache only — survives process death,
  /// not machine death), 1 every append (safest, slowest), N every N
  /// appends. Sync() forces one regardless.
  int fsync_every_records = 0;
  /// Decode bound during replay (mirrors the wire limit: a WAL record is
  /// one FEEDB frame).
  size_t max_frame_body_bytes = kDefaultMaxFrameBodyBytes;
};

/// Monotonic counters of one log's lifetime.
struct EdgeLogStats {
  uint64_t records_appended = 0;
  uint64_t edges_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t segments_created = 0;
};

/// The write-ahead edge log: accepted Feed/FeedBatch input appended as
/// length-prefixed binary records *before* it is applied to the backend,
/// so a crashed process can replay everything past its last snapshot.
///
/// On-disk layout — a directory of segments named `wal-<first_seq:016x>.log`:
///
///   segment header (20 bytes):
///     magic     4 bytes  "SWL1"
///     version   u32      1
///     base_seq  u64      sequence number of the segment's first edge
///     crc       u32      CRC-32 of the 16 bytes above
///   record (repeated):
///     len       u32      byte length of the payload below
///     crc       u32      CRC-32 of the payload
///     payload:
///       first_seq u64    sequence number of the record's first edge
///       frame     ...    one FEEDB frame (stream/wire_format.h): the
///                        same string-table-interned binary layout the
///                        network wire uses, so the two codecs can never
///                        drift
///
/// Sequence numbers count *edges logged* (not records, not engine edge
/// ids — malformed edges are logged too, log-before-apply, and re-reject
/// deterministically on replay). A snapshot stamps the sequence it was
/// taken at; recovery replays everything at or past that stamp.
///
/// Torn tails are expected (that is what a crash leaves behind): replay
/// stops cleanly at the first short or CRC-failing record of the *last*
/// segment, and Open() truncates such a tail before appending over it.
/// The same corruption in an older segment is unrecoverable data loss
/// and fails loudly instead.
///
/// Threading: all calls on one control thread (the same contract as the
/// QueryBackend it guards).
class EdgeLog {
 public:
  /// Opens `dir` for appending (creating it if missing): scans existing
  /// segments, validates the last one record-by-record, truncates a torn
  /// tail, and positions next_seq() after the last durable edge — or at
  /// `min_seq` if that is further (a snapshot may outlive its pruned WAL;
  /// the sequence must never run backwards past one, or snapshot
  /// filenames would stop sorting by freshness). A fast-forward forces
  /// the next append into a fresh segment.
  static StatusOr<std::unique_ptr<EdgeLog>> Open(const std::string& dir,
                                                 const Interner* interner,
                                                 EdgeLogOptions options = {},
                                                 uint64_t min_seq = 0);

  /// Appends one record holding `batch` (no-op for an empty batch),
  /// assigning it sequence numbers [next_seq, next_seq + batch.size()).
  Status Append(const EdgeBatch& batch);

  /// Forces an fsync of the current segment.
  Status Sync();

  /// Deletes every segment that holds only edges below `seq` (all of its
  /// content is covered by a snapshot at `seq`). The segment containing
  /// `seq` and everything after it survive. Returns segments deleted.
  StatusOr<int> PruneSegmentsBelow(uint64_t seq);

  /// Sequence number the next appended edge will get == total edges ever
  /// logged into this directory.
  uint64_t next_seq() const { return next_seq_; }

  const EdgeLogStats& stats() const { return stats_; }
  /// Segment files currently on disk (cheap cached count).
  uint64_t num_segments() const { return num_segments_; }

  struct ReplayStats {
    uint64_t edges_replayed = 0;  ///< Edges delivered to the callback.
    uint64_t next_seq = 0;        ///< One past the last durable edge.
    bool tail_truncated = false;  ///< A torn tail was skipped.
  };

  /// Edges are delivered in logged order as (batch, first_seq) pairs;
  /// a record straddling `from_seq` is delivered trimmed.
  using ReplayFn =
      std::function<void(const EdgeBatch& batch, uint64_t first_seq)>;

  /// Replays every durable edge with sequence >= `from_seq` out of `dir`.
  /// Labels are interned into `interner` (the recovering process's own).
  /// NotFound when the directory has no segments at all is NOT an error:
  /// replay of an empty log returns zeroed stats.
  static StatusOr<ReplayStats> Replay(const std::string& dir,
                                      uint64_t from_seq, Interner* interner,
                                      const ReplayFn& fn,
                                      EdgeLogOptions options = {});

 private:
  EdgeLog(std::string dir, const Interner* interner, EdgeLogOptions options)
      : dir_(std::move(dir)), interner_(interner), options_(options) {}

  /// Opens (creating) the segment whose base is next_seq_.
  Status OpenNewSegment();

  /// Appends an over-limit batch as several records, atomically as a
  /// whole: on any partial failure the log is rolled back to its
  /// pre-call state (segments created by the split deleted, the
  /// checkpoint segment truncated) or poisoned — a record for edges
  /// whose feed was failed must never survive into replay.
  Status AppendSplit(const EdgeBatch& batch);

  std::string dir_;
  const Interner* interner_;
  EdgeLogOptions options_;

  UniqueFd lock_fd_;             ///< flock'd wal.lock: single writer.
  UniqueFd fd_;                  ///< Current segment, opened for append.
  size_t segment_size_ = 0;      ///< Bytes written to the current segment.
  uint64_t current_segment_base_ = 0;  ///< Base seq of the open segment.
  uint64_t next_seq_ = 0;
  uint64_t num_segments_ = 0;
  int records_since_sync_ = 0;
  /// Set when a failed append could not be rolled back (ftruncate
  /// failed too): the segment ends in torn bytes, so every further
  /// append must be refused — anything written after the tear would be
  /// silently dropped by replay's tail-truncation.
  bool broken_ = false;
  EdgeLogStats stats_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_PERSIST_EDGE_LOG_H_
