#include "streamworks/persist/frame_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <vector>

#include "streamworks/common/binio.h"
#include "streamworks/common/str_util.h"
#include "streamworks/persist/crc32.h"
#include "streamworks/persist/fs_util.h"

namespace streamworks {

namespace {

constexpr char kSegmentMagic[4] = {'S', 'W', 'F', '1'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 20;
constexpr size_t kRecordHeaderBytes = 8;  // len u32 + crc u32

std::string SegmentName(uint64_t base_seq) {
  return SeqFileName("frames-", base_seq, ".log");
}

StatusOr<std::vector<std::pair<uint64_t, std::filesystem::path>>>
ListSegments(const std::string& dir) {
  return ListSeqFiles(dir, "frames-", ".log");
}

StatusOr<uint64_t> CheckSegmentHeader(std::string_view bytes,
                                      const std::string& what) {
  if (bytes.size() < kSegmentHeaderBytes) {
    return Status::DataLoss(what + ": short segment header");
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss(what + ": bad segment magic");
  }
  if (GetU32(bytes.data() + 4) != kSegmentVersion) {
    return Status::DataLoss(what + ": unsupported segment version");
  }
  const uint32_t crc = GetU32(bytes.data() + 16);
  if (Crc32(bytes.substr(0, 16)) != crc) {
    return Status::DataLoss(what + ": segment header CRC mismatch");
  }
  return GetU64(bytes.data() + 8);
}

struct SegmentScan {
  uint64_t next_seq = 0;   ///< One past the last valid record.
  size_t valid_bytes = 0;  ///< Offset of the first invalid byte.
  bool tail_truncated = false;
};

/// Walks a segment's records, delivering each payload to `fn` (null fn =
/// validate only). Stops at the first torn record; a structurally valid
/// record that breaks sequence continuity or the size bound is DataLoss
/// (the CRC passed, so it is not crash damage).
StatusOr<SegmentScan> ScanSegment(std::string_view bytes, uint64_t base_seq,
                                  uint64_t from_seq, size_t max_record_bytes,
                                  const FrameLog::ReplayFn* fn,
                                  const std::string& what) {
  SegmentScan scan;
  scan.next_seq = base_seq;
  scan.valid_bytes = kSegmentHeaderBytes;
  size_t pos = kSegmentHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) {
      scan.tail_truncated = true;
      return scan;
    }
    const uint32_t len = GetU32(bytes.data() + pos);
    const uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len < 8 || bytes.size() - pos - kRecordHeaderBytes < len) {
      scan.tail_truncated = true;
      return scan;
    }
    const std::string_view payload =
        bytes.substr(pos + kRecordHeaderBytes, len);
    if (Crc32(payload) != crc) {
      scan.tail_truncated = true;
      return scan;
    }
    const uint64_t seq = GetU64(payload.data());
    if (seq != scan.next_seq) {
      return Status::DataLoss(StrCat(what,
                                     ": record sequence jumped from ",
                                     scan.next_seq, " to ", seq));
    }
    const std::string_view record = payload.substr(8);
    if (record.size() > max_record_bytes) {
      return Status::DataLoss(StrCat(what, ": record of ", record.size(),
                                     " bytes exceeds max_record_bytes"));
    }
    if (fn != nullptr && seq >= from_seq) {
      (*fn)(record, seq);
    }
    ++scan.next_seq;
    pos += kRecordHeaderBytes + len;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace

StatusOr<std::unique_ptr<FrameLog>> FrameLog::Open(const std::string& dir,
                                                   FrameLogOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create frame log dir " + dir + ": " +
                           ec.message());
  }
  auto log =
      std::unique_ptr<FrameLog>(new FrameLog(dir, options));

  // Single-writer lock, same rationale as the edge WAL: interleaved
  // appends from two processes destroy record framing for both.
  const std::filesystem::path lock_path =
      std::filesystem::path(dir) / "frames.lock";
  const int lock_fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd < 0) {
    return Status::IoError(StrCat("cannot open frame log lock ",
                                  lock_path.string(), ": ",
                                  std::strerror(errno)));
  }
  log->lock_fd_.reset(lock_fd);
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(
        "another process holds the frame log at " + dir +
        " (two writers would corrupt acknowledged records)");
  }

  SW_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));

  // Only the last segment can carry crash damage: a torn tail is
  // truncated away, a torn header (crash inside OpenNewSegment) drops
  // the whole file and falls back to the now-last segment.
  while (!segments.empty()) {
    const auto& [base, path] = segments.back();
    SW_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
    auto base_or = CheckSegmentHeader(bytes, path.string());
    if (!base_or.ok() || base_or.value() != base) {
      std::filesystem::remove(path, ec);
      if (ec) {
        return Status::IoError("cannot drop torn frame log segment " +
                               path.string() + ": " + ec.message());
      }
      segments.pop_back();
      continue;
    }
    SW_ASSIGN_OR_RETURN(
        const SegmentScan scan,
        ScanSegment(bytes, base, /*from_seq=*/0, options.max_record_bytes,
                    nullptr, path.string()));
    if (scan.valid_bytes < bytes.size()) {
      std::filesystem::resize_file(path, scan.valid_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn frame log tail of " +
                               path.string() + ": " + ec.message());
      }
    }
    log->next_seq_ = scan.next_seq;

    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError(StrCat("cannot reopen frame log segment ",
                                    path.string(), ": ",
                                    std::strerror(errno)));
    }
    log->fd_.reset(fd);
    log->segment_size_ = scan.valid_bytes;
    log->current_segment_base_ = base;
    break;
  }
  return log;
}

Status FrameLog::OpenNewSegment() {
  const std::filesystem::path path =
      std::filesystem::path(dir_) / SegmentName(next_seq_);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(StrCat("cannot create frame log segment ",
                                  path.string(), ": ",
                                  std::strerror(errno)));
  }
  fd_.reset(fd);
  std::string header;
  header.append(kSegmentMagic, sizeof(kSegmentMagic));
  PutU32(&header, kSegmentVersion);
  PutU64(&header, next_seq_);
  PutU32(&header, Crc32(header));
  if (Status written = WriteAll(fd_.get(), header); !written.ok()) {
    fd_.reset();
    ::unlink(path.c_str());
    return written;
  }
  FsyncDir(dir_);
  current_segment_base_ = next_seq_;
  segment_size_ = header.size();
  stats_.bytes_appended += header.size();
  ++stats_.segments_created;
  return OkStatus();
}

Status FrameLog::Append(std::string_view record) {
  if (broken_) {
    return Status::IoError(
        "frame log poisoned: an earlier failed append could not be "
        "rolled back, so further appends would land after torn bytes "
        "and be silently dropped by replay");
  }
  if (record.size() > options_.max_record_bytes) {
    return Status::InvalidArgument(
        StrCat("frame log record of ", record.size(),
               " bytes exceeds max_record_bytes (",
               options_.max_record_bytes,
               "); replay would reject the record"));
  }
  if (!fd_.valid() || segment_size_ >= options_.segment_bytes) {
    if (fd_.valid()) {
      // Seal the outgoing segment before its successor exists, or
      // replay could see a gap after a machine crash.
      SW_RETURN_IF_ERROR(Sync());
    }
    SW_RETURN_IF_ERROR(OpenNewSegment());
  }
  // [len u32][crc u32][seq u64][record...], length and CRC patched over
  // placeholders once the payload is in place.
  std::string buf;
  buf.reserve(kRecordHeaderBytes + 8 + record.size());
  PutU32(&buf, 0);  // len placeholder
  PutU32(&buf, 0);  // crc placeholder
  PutU64(&buf, next_seq_);
  buf.append(record);
  const std::string_view payload =
      std::string_view(buf).substr(kRecordHeaderBytes);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    buf[static_cast<size_t>(i)] = static_cast<char>((len >> (8 * i)) & 0xFF);
    buf[static_cast<size_t>(4 + i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  if (Status written = WriteAll(fd_.get(), buf); !written.ok()) {
    // Rollback-or-poison, same as the edge WAL: a later successful
    // append must never land after torn bytes.
    if (::ftruncate(fd_.get(), static_cast<off_t>(segment_size_)) != 0) {
      broken_ = true;
    }
    return written;
  }
  const size_t pre_record_size = segment_size_;
  segment_size_ += buf.size();
  ++next_seq_;
  ++stats_.records_appended;
  stats_.bytes_appended += buf.size();
  if (options_.fsync_every_records > 0 &&
      ++records_since_sync_ >= options_.fsync_every_records) {
    if (Status synced = Sync(); !synced.ok()) {
      if (::ftruncate(fd_.get(), static_cast<off_t>(pre_record_size)) == 0) {
        segment_size_ = pre_record_size;
        --next_seq_;
        --stats_.records_appended;
        stats_.bytes_appended -= buf.size();
      } else {
        broken_ = true;
      }
      return synced;
    }
  }
  return OkStatus();
}

Status FrameLog::Sync() {
  if (!fd_.valid()) return OkStatus();
  if (::fsync(fd_.get()) != 0) {
    // Failed fsync may have marked dirty pages clean; nothing short of a
    // restart makes the log trustworthy again.
    broken_ = true;
    return Status::IoError(StrCat("frame log fsync failed: ",
                                  std::strerror(errno)));
  }
  records_since_sync_ = 0;
  ++stats_.fsyncs;
  return OkStatus();
}

Status FrameLog::Replay(const std::string& dir, uint64_t from_seq,
                        const ReplayFn& fn, FrameLogOptions options) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return OkStatus();
  SW_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  if (segments.empty()) return OkStatus();

  // Consecutive scanned segments must be seamless — a lost sealed
  // segment in the middle would silently swallow its records.
  std::optional<uint64_t> prev_end;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, path] = segments[i];
    const bool last = i + 1 == segments.size();
    if (!last && segments[i + 1].first <= from_seq) continue;
    if (prev_end.has_value() && base != *prev_end) {
      return Status::DataLoss(
          StrCat(path.string(), ": frame log gap — previous segment ends "
                                "at ",
                 *prev_end, " but this one starts at ", base));
    }
    if (!prev_end.has_value() && base > from_seq) {
      return Status::DataLoss(
          StrCat(path.string(), ": frame log starts at ", base,
                 " but replay needs records from ", from_seq));
    }
    SW_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
    auto base_or = CheckSegmentHeader(bytes, path.string());
    if (!base_or.ok() || base_or.value() != base) {
      if (last) {
        // A crash can tear even the header of a freshly rotated
        // segment; everything before it already replayed.
        break;
      }
      return base_or.ok()
                 ? Status::DataLoss(path.string() +
                                    ": filename and header disagree")
                 : base_or.status();
    }
    auto scan_or = ScanSegment(bytes, base, from_seq,
                               options.max_record_bytes, &fn, path.string());
    SW_RETURN_IF_ERROR(scan_or.status());
    const SegmentScan& scan = scan_or.value();
    if (scan.tail_truncated && !last) {
      return Status::DataLoss(
          path.string() + ": torn record in a sealed frame log segment");
    }
    prev_end = scan.next_seq;
  }
  return OkStatus();
}

StatusOr<uint64_t> FrameLog::CountRecords(const std::string& dir,
                                          FrameLogOptions options) {
  uint64_t count = 0;
  SW_RETURN_IF_ERROR(Replay(
      dir, /*from_seq=*/0,
      [&count](std::string_view, uint64_t) { ++count; }, options));
  return count;
}

}  // namespace streamworks
