#include "streamworks/persist/crc32.h"

#include <array>

namespace streamworks {

namespace {

constexpr std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = BuildCrc32Table();

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace streamworks
