#include "streamworks/persist/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "streamworks/common/str_util.h"

namespace streamworks {

Status WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrCat("write failed: ",
                                    std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return OkStatus();
}

void FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

StatusOr<std::string> ReadFileToString(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed on " + path.string());
  return std::move(buf).str();
}

std::string SeqFileName(std::string_view prefix, uint64_t seq,
                        std::string_view suffix) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(seq));
  return std::string(prefix) + hex + std::string(suffix);
}

StatusOr<std::vector<std::pair<uint64_t, std::filesystem::path>>>
ListSeqFiles(const std::string& dir, std::string_view prefix,
             std::string_view suffix) {
  std::vector<std::pair<uint64_t, std::filesystem::path>> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    uint64_t seq = 0;
    if (ParseSeqFileName(entry.path().filename().string(), prefix, suffix,
                         &seq)) {
      files.emplace_back(seq, entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool ParseSeqFileName(std::string_view name, std::string_view prefix,
                      std::string_view suffix, uint64_t* seq) {
  if (name.size() != prefix.size() + 16 + suffix.size() ||
      !name.starts_with(prefix) || !name.ends_with(suffix)) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *seq = value;
  return true;
}

}  // namespace streamworks
