#include "streamworks/persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <limits>
#include <unordered_map>
#include <vector>

#include "streamworks/common/binio.h"
#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"
#include "streamworks/common/unique_fd.h"
#include "streamworks/persist/crc32.h"
#include "streamworks/persist/fs_util.h"

namespace streamworks {

namespace {

constexpr char kSnapshotMagic[4] = {'S', 'W', 'S', 'N'};
constexpr uint32_t kSnapshotVersion = 1;

std::string SnapshotName(uint64_t wal_seq) {
  return SeqFileName("snap-", wal_seq, ".snap");
}

/// Strings (labels, session names, tags) can be tenant-controlled, so an
/// over-u16 length must fail the snapshot with a Status — never abort
/// the process (one hostile SESSION name would otherwise take every
/// tenant down at the next snapshot).
Status PutString(std::string* out, std::string_view s);

/// First-seen-order label string table shared by the whole file (the
/// FEEDB idiom, file-scoped instead of frame-scoped).
class LabelTable {
 public:
  explicit LabelTable(const Interner& interner) : interner_(interner) {}

  uint32_t IndexOf(LabelId id) {
    auto [it, inserted] = index_.try_emplace(id, ids_.size());
    if (inserted) ids_.push_back(id);
    return static_cast<uint32_t>(it->second);
  }

  Status Encode(std::string* out) const {
    PutU32(out, static_cast<uint32_t>(ids_.size()));
    for (LabelId id : ids_) {
      const std::string& name = interner_.Name(id);
      SW_RETURN_IF_ERROR(PutString(out, name));
    }
    return OkStatus();
  }

 private:
  const Interner& interner_;
  std::unordered_map<LabelId, size_t> index_;
  std::vector<LabelId> ids_;
};

Status PutString(std::string* out, std::string_view s) {
  if (s.size() > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument(
        StrCat("string of ", s.size(),
               " bytes exceeds the snapshot format's u16 length"));
  }
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
  return OkStatus();
}

/// Bounds-checked read cursor: every declared length is validated against
/// the bytes actually present before anything dereferences — a corrupted
/// (or hostile) snapshot must fail decoding, never crash the loader.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool Take(size_t n, const char** out) {
    if (bytes_.size() - pos_ < n) return false;
    *out = bytes_.data() + pos_;
    pos_ += n;
    return true;
  }
  bool U8(uint8_t* v) {
    const char* p;
    if (!Take(1, &p)) return false;
    *v = static_cast<uint8_t>(*p);
    return true;
  }
  bool U16(uint16_t* v) {
    const char* p;
    if (!Take(2, &p)) return false;
    *v = GetU16(p);
    return true;
  }
  bool U32(uint32_t* v) {
    const char* p;
    if (!Take(4, &p)) return false;
    *v = GetU32(p);
    return true;
  }
  bool U64(uint64_t* v) {
    const char* p;
    if (!Take(8, &p)) return false;
    *v = GetU64(p);
    return true;
  }
  bool I64(int64_t* v) {
    const char* p;
    if (!Take(8, &p)) return false;
    *v = GetI64(p);
    return true;
  }
  bool String(std::string_view* out) {
    uint16_t len;
    const char* p;
    if (!U16(&len) || !Take(len, &p)) return false;
    *out = std::string_view(p, len);
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::string> EncodeSnapshot(const SnapshotContents& contents,
                                     const Interner& interner) {
  LabelTable table(interner);

  // Pre-intern every label so the table is complete before it is
  // encoded; record per-edge / per-query indexes as we go.
  std::string edges;
  PutU64(&edges, contents.window.edges.size());
  for (const PersistedEdge& pe : contents.window.edges) {
    PutU64(&edges, pe.id);
    PutU64(&edges, pe.edge.src);
    PutU64(&edges, pe.edge.dst);
    PutU32(&edges, table.IndexOf(pe.edge.src_label));
    PutU32(&edges, table.IndexOf(pe.edge.dst_label));
    PutU32(&edges, table.IndexOf(pe.edge.edge_label));
    PutI64(&edges, pe.edge.ts);
  }

  std::string sessions;
  PutU32(&sessions, static_cast<uint32_t>(contents.service.sessions.size()));
  for (const PersistedSession& ps : contents.service.sessions) {
    SW_RETURN_IF_ERROR(PutString(&sessions, ps.name));
    PutU32(&sessions, static_cast<uint32_t>(ps.subscriptions.size()));
    for (const PersistedSubscription& sub : ps.subscriptions) {
      SW_RETURN_IF_ERROR(PutString(&sessions, sub.tag));
      SW_RETURN_IF_ERROR(PutString(&sessions, sub.query.name()));
      const int nv = sub.query.num_vertices();
      const int ne = sub.query.num_edges();
      PutU16(&sessions, static_cast<uint16_t>(nv));
      for (int v = 0; v < nv; ++v) {
        PutU32(&sessions, table.IndexOf(sub.query.vertex_label(v)));
      }
      PutU16(&sessions, static_cast<uint16_t>(ne));
      for (int e = 0; e < ne; ++e) {
        const QueryEdge& qe = sub.query.edge(e);
        PutU16(&sessions, static_cast<uint16_t>(qe.src));
        PutU16(&sessions, static_cast<uint16_t>(qe.dst));
        PutU32(&sessions, table.IndexOf(qe.label));
      }
      PutI64(&sessions, sub.window);
      SW_RETURN_IF_ERROR(
          PutString(&sessions, DecompositionStrategyName(sub.strategy)));
      PutU64(&sessions, sub.queue_capacity);
      SW_RETURN_IF_ERROR(
          PutString(&sessions, OverflowPolicyName(sub.policy)));
      sessions.push_back(sub.paused ? '\1' : '\0');
    }
  }

  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&out, kSnapshotVersion);
  PutU64(&out, contents.wal_seq);
  PutU64(&out, contents.window.next_edge_id);
  PutI64(&out, contents.window.watermark);
  SW_RETURN_IF_ERROR(table.Encode(&out));
  out.append(edges);
  out.append(sessions);
  PutU32(&out, Crc32(out));
  return out;
}

StatusOr<SnapshotContents> DecodeSnapshot(std::string_view bytes,
                                          Interner* interner) {
  const auto corrupt = [](std::string_view why) {
    return Status::DataLoss(StrCat("corrupt snapshot: ", why));
  };
  if (bytes.size() < 4 + 4 + 8 + 8 + 8 + 4) return corrupt("too short");
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return corrupt("bad magic");
  }
  const uint32_t declared_crc = GetU32(bytes.data() + bytes.size() - 4);
  if (Crc32(bytes.substr(0, bytes.size() - 4)) != declared_crc) {
    return corrupt("CRC mismatch");
  }

  Cursor cur(bytes.substr(4, bytes.size() - 4 - 4));
  SnapshotContents contents;
  uint32_t version;
  if (!cur.U32(&version)) return corrupt("truncated header");
  if (version != kSnapshotVersion) return corrupt("unsupported version");
  if (!cur.U64(&contents.wal_seq) ||
      !cur.U64(&contents.window.next_edge_id) ||
      !cur.I64(&contents.window.watermark)) {
    return corrupt("truncated header");
  }

  uint32_t n_labels;
  if (!cur.U32(&n_labels)) return corrupt("truncated string-table count");
  // Each entry costs at least its 2-byte length; a count beyond
  // remaining/2 is a lie — reject before it sizes anything.
  if (n_labels > cur.remaining() / 2) {
    return corrupt("string-table count exceeds body");
  }
  std::vector<LabelId> labels;
  labels.reserve(n_labels);
  for (uint32_t i = 0; i < n_labels; ++i) {
    std::string_view name;
    // String() bounds-checks the declared length against the bytes
    // present — an entry running past the body fails here even though
    // the file-level CRC already passed (defense against a forged CRC).
    if (!cur.String(&name)) return corrupt("truncated string table");
    labels.push_back(interner->Intern(name));
  }
  const auto label_at = [&](uint32_t idx, LabelId* out) {
    if (idx >= labels.size()) return false;
    *out = labels[idx];
    return true;
  };

  uint64_t n_edges;
  if (!cur.U64(&n_edges)) return corrupt("truncated edge count");
  constexpr size_t kEdgeBytes = 8 + 8 + 8 + 4 + 4 + 4 + 8;
  if (n_edges > cur.remaining() / kEdgeBytes) {
    return corrupt("edge count exceeds body");
  }
  contents.window.edges.reserve(n_edges);
  EdgeId prev_id = 0;
  for (uint64_t i = 0; i < n_edges; ++i) {
    PersistedEdge pe;
    uint32_t src_label, dst_label, edge_label;
    uint64_t id;
    if (!cur.U64(&id) || !cur.U64(&pe.edge.src) || !cur.U64(&pe.edge.dst) ||
        !cur.U32(&src_label) || !cur.U32(&dst_label) ||
        !cur.U32(&edge_label) || !cur.I64(&pe.edge.ts)) {
      return corrupt("truncated edge record");
    }
    pe.id = id;
    if (i > 0 && id <= prev_id) {
      return corrupt("window edge ids not ascending");
    }
    prev_id = id;
    if (!label_at(src_label, &pe.edge.src_label) ||
        !label_at(dst_label, &pe.edge.dst_label) ||
        !label_at(edge_label, &pe.edge.edge_label)) {
      return corrupt("edge label index out of string-table range");
    }
    contents.window.edges.push_back(pe);
  }

  uint32_t n_sessions;
  if (!cur.U32(&n_sessions)) return corrupt("truncated session count");
  if (n_sessions > cur.remaining()) {
    return corrupt("session count exceeds body");
  }
  for (uint32_t s = 0; s < n_sessions; ++s) {
    PersistedSession ps;
    std::string_view name;
    if (!cur.String(&name)) return corrupt("truncated session name");
    ps.name = std::string(name);
    uint32_t n_subs;
    if (!cur.U32(&n_subs)) return corrupt("truncated subscription count");
    if (n_subs > cur.remaining()) {
      return corrupt("subscription count exceeds body");
    }
    for (uint32_t q = 0; q < n_subs; ++q) {
      PersistedSubscription sub;
      std::string_view tag, query_name, strategy_name, policy_name;
      if (!cur.String(&tag) || !cur.String(&query_name)) {
        return corrupt("truncated subscription names");
      }
      sub.tag = std::string(tag);
      uint16_t nv;
      if (!cur.U16(&nv)) return corrupt("truncated query vertex count");
      // The builder SW_CHECKs its size cap; a forged-CRC snapshot must
      // fail decoding here, never abort the recovering process.
      if (nv == 0 || nv > kMaxQuerySize) {
        return corrupt("query vertex count out of range");
      }
      QueryGraphBuilder builder(interner);
      for (uint16_t v = 0; v < nv; ++v) {
        uint32_t label_idx;
        LabelId label;
        if (!cur.U32(&label_idx) || !label_at(label_idx, &label)) {
          return corrupt("bad query vertex label");
        }
        builder.AddVertex(interner->Name(label));
      }
      uint16_t ne;
      if (!cur.U16(&ne)) return corrupt("truncated query edge count");
      if (ne == 0 || ne > kMaxQuerySize) {
        return corrupt("query edge count out of range");
      }
      for (uint16_t e = 0; e < ne; ++e) {
        uint16_t src, dst;
        uint32_t label_idx;
        LabelId label;
        if (!cur.U16(&src) || !cur.U16(&dst) || !cur.U32(&label_idx) ||
            !label_at(label_idx, &label)) {
          return corrupt("bad query edge");
        }
        if (src >= nv || dst >= nv) {
          return corrupt("query edge endpoint out of range");
        }
        builder.AddEdge(src, dst, interner->Name(label));
      }
      auto built = builder.Build(query_name);
      if (!built.ok()) {
        return corrupt(StrCat("unbuildable query '", query_name,
                              "': ", built.status().message()));
      }
      sub.query = std::move(built).value();
      uint8_t paused;
      if (!cur.I64(&sub.window) || !cur.String(&strategy_name) ||
          !cur.U64(&sub.queue_capacity) || !cur.String(&policy_name) ||
          !cur.U8(&paused)) {
        return corrupt("truncated subscription options");
      }
      bool strategy_found = false;
      for (DecompositionStrategy st : kAllDecompositionStrategies) {
        if (DecompositionStrategyName(st) == strategy_name) {
          sub.strategy = st;
          strategy_found = true;
          break;
        }
      }
      if (!strategy_found) return corrupt("unknown strategy name");
      auto policy = ParseOverflowPolicy(policy_name);
      if (!policy.ok()) return corrupt("unknown overflow policy");
      sub.policy = policy.value();
      sub.paused = paused != 0;
      ps.subscriptions.push_back(std::move(sub));
    }
    contents.service.sessions.push_back(std::move(ps));
  }
  if (cur.remaining() != 0) return corrupt("trailing bytes");
  return contents;
}

StatusOr<std::string> WriteSnapshotFile(const std::string& dir,
                                        const SnapshotContents& contents,
                                        const Interner& interner) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot dir " + dir + ": " +
                           ec.message());
  }
  SW_ASSIGN_OR_RETURN(const std::string blob,
                      EncodeSnapshot(contents, interner));
  const std::filesystem::path final_path =
      std::filesystem::path(dir) / SnapshotName(contents.wal_seq);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";

  {
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IoError(StrCat("cannot create ", tmp_path.string(),
                                    ": ", std::strerror(errno)));
    }
    UniqueFd guard(fd);
    // A failed write/fsync must not strand the half-written tmp file:
    // on the disk-full machine that makes snapshots fail, every cadence
    // retry would otherwise orphan another full-window image.
    if (Status written = WriteAll(fd, blob); !written.ok()) {
      ::unlink(tmp_path.c_str());
      return written;
    }
    if (::fsync(fd) != 0) {
      const Status failed = Status::IoError(
          StrCat("snapshot fsync failed: ", std::strerror(errno)));
      ::unlink(tmp_path.c_str());
      return failed;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("snapshot rename failed: " + ec.message());
  }
  // Make the rename itself durable.
  FsyncDir(dir);
  return final_path.string();
}

StatusOr<SnapshotLoadResult> LoadLatestSnapshot(const std::string& dir,
                                                Interner* interner) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    return Status::NotFound("no snapshot directory at " + dir);
  }
  SW_ASSIGN_OR_RETURN(auto snaps, ListSeqFiles(dir, "snap-", ".snap"));
  std::reverse(snaps.begin(), snaps.end());  // newest first

  SnapshotLoadResult result;
  for (const auto& [seq, path] : snaps) {
    auto bytes = ReadFileToString(path);
    if (bytes.ok()) {
      // One decode, straight into the live interner: the window walk is
      // recovery's dominant cost and must not run twice. A snapshot
      // rejected mid-decode may leave labels it interned before the
      // rejection — benign (label ids are process-local and unused
      // entries are inert), and random corruption never gets that far
      // anyway (the whole-file CRC is checked before any field is
      // read).
      auto decoded = DecodeSnapshot(bytes.value(), interner);
      if (decoded.ok()) {
        result.contents = std::move(decoded).value();
        result.path = path.string();
        return result;
      }
    }
    // Fall back to the previous snapshot: a corrupt newest file costs
    // recovery freshness (a longer WAL replay), never the process.
    ++result.invalid_skipped;
  }
  return Status::NotFound("no valid snapshot in " + dir);
}

StatusOr<int> PruneSnapshots(const std::string& dir, int keep_newest) {
  if (keep_newest <= 0) {
    return Status::InvalidArgument(
        "keep_newest must be positive (the newest snapshot is the "
        "recovery point)");
  }
  std::error_code ec;
  SW_ASSIGN_OR_RETURN(auto snaps, ListSeqFiles(dir, "snap-", ".snap"));
  std::reverse(snaps.begin(), snaps.end());  // newest first
  int deleted = 0;
  for (size_t i = static_cast<size_t>(keep_newest); i < snaps.size(); ++i) {
    std::filesystem::remove(snaps[i].second, ec);
    if (ec) {
      return Status::IoError("cannot prune snapshot " +
                             snaps[i].second.string() + ": " +
                             ec.message());
    }
    ++deleted;
  }
  return deleted;
}

}  // namespace streamworks
