#ifndef STREAMWORKS_GRAPH_DYNAMIC_GRAPH_H_
#define STREAMWORKS_GRAPH_DYNAMIC_GRAPH_H_

#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// Internal, immutable record of an ingested edge.
struct EdgeRecord {
  VertexId src = kInvalidVertexId;
  VertexId dst = kInvalidVertexId;
  LabelId label = kInvalidLabelId;
  Timestamp ts = 0;
};

/// One incident edge from a vertex's point of view. Adjacency lists store
/// entries in arrival order, which (because stream timestamps are
/// non-decreasing) is also ascending timestamp order — matchers exploit this
/// to scan only the recent suffix of a list.
struct AdjEntry {
  VertexId other = kInvalidVertexId;  ///< Opposite endpoint.
  EdgeId edge = kInvalidEdgeId;
  LabelId label = kInvalidLabelId;
  Timestamp ts = 0;
};

/// The dynamic multi-relational data graph Gd (paper §2.1).
///
/// A directed multigraph over typed vertices and typed, timestamped edges.
/// Edges arrive with non-decreasing timestamps; vertices are created on
/// first sight from the labels carried by each StreamEdge. The graph keeps a
/// sliding *retention* window behind the newest timestamp (the watermark):
/// an edge with timestamp `t` is expired once `watermark - t >= retention`,
/// because under the strict match-span constraint `τ < tW` (with
/// `retention >= tW`) it can never again participate in a match completed by
/// a future edge. Expired edges are evicted in O(1) amortised per edge —
/// arrival order equals per-vertex adjacency order, so eviction trims list
/// prefixes.
///
/// Edge ids are global sequence numbers and are never reused, so they double
/// as arrival order and remain meaningful after eviction (for match
/// signatures); only dereferencing an evicted record is an error.
///
/// Vertices are never evicted: the vertex universe of the target workloads
/// (hosts, IPs, news entities) is orders of magnitude smaller than the edge
/// stream. This matches the paper's shared-memory design.
class DynamicGraph {
 public:
  /// `interner` must outlive the graph; it resolves the labels carried by
  /// ingested edges (shared with the queries registered against this graph).
  explicit DynamicGraph(const Interner* interner) : interner_(interner) {}

  /// Sets the retention window. Must be positive. kMaxTimestamp (default)
  /// disables eviction. Lowering retention below a previously used value is
  /// allowed; expiry applies from the next ingest.
  void set_retention(Timestamp retention);
  Timestamp retention() const { return retention_; }

  /// Ingests one edge. Fails with InvalidArgument if the timestamp is
  /// negative or decreases, or if an endpoint's label contradicts the label
  /// recorded when that external vertex was first seen.
  StatusOr<EdgeId> AddEdge(const StreamEdge& e);

  /// Ingests one edge under a caller-assigned id instead of the next
  /// sequence number. Vertex-partitioned shards use this to thread the
  /// *group-global* ingest sequence through every shard: each shard stores
  /// only the edges incident to its owned vertices, but ids (and therefore
  /// the arrival-order comparisons the exactly-once anchor discipline
  /// relies on) stay globally meaningful. `id` must be >= next_edge_id();
  /// gaps are the edges other shards own. The first call switches the graph
  /// permanently into assigned-id bookkeeping (id lookup via binary search
  /// over the stored-id sequence).
  StatusOr<EdgeId> AddEdgeWithId(const StreamEdge& e, EdgeId id);

  /// Resolves (ext, label) to the dense internal id, creating the vertex on
  /// first sight — the same mapping ingest uses, exposed so a shard can
  /// localize a forwarded match that references vertices it has never seen
  /// in its own edge subset. Fails on a label clash with the recorded
  /// label. A vertex created this way has empty adjacency until an
  /// incident edge is ingested.
  StatusOr<VertexId> InternVertex(ExternalVertexId ext, LabelId label) {
    return EnsureVertex(ext, label);
  }

  /// When set, AddEdge/AddEdgeWithId no longer evict on ingest; eviction
  /// runs only through AdvanceWatermark. Partitioned shards use this so
  /// window expiry advances at group-controlled epoch boundaries — after
  /// the exchange has drained — instead of racing ahead of forwarded
  /// matches that still need the local neighbourhood of an older anchor.
  void set_manual_eviction(bool manual) { manual_eviction_ = manual; }

  /// Raises the watermark to at least `watermark` (no-op if behind) and
  /// evicts everything expired under it. Edges ingested later must carry
  /// ts >= the raised watermark, which holds for any time-ordered stream
  /// routed through a group epoch barrier.
  void AdvanceWatermark(Timestamp watermark);

  /// Fast-forwards the id sequence to `next` without ingesting anything,
  /// engaging assigned-id mode if needed. Recovery uses it so the first
  /// post-restore edge gets exactly the id it would have had in the
  /// crashed incarnation, even when the restored window is missing ids
  /// (evicted edges are not snapshotted, and a partitioned shard stores
  /// only its owned subset). `next` must be >= next_edge_id().
  void FastForwardEdgeIds(EdgeId next);

  // --- Vertices ---------------------------------------------------------
  size_t num_vertices() const { return vertex_labels_.size(); }
  /// Dense id for an external id, or kInvalidVertexId if never seen.
  VertexId FindVertex(ExternalVertexId ext) const;
  LabelId vertex_label(VertexId v) const { return vertex_labels_[v]; }
  ExternalVertexId external_id(VertexId v) const { return external_ids_[v]; }

  // --- Edges ------------------------------------------------------------
  /// One past the largest id ever ingested (== total edges ingested in
  /// sequential-id mode, where ids have no gaps).
  EdgeId next_edge_id() const {
    return assigned_ids_ ? next_assigned_id_ : base_edge_id_ + edges_.size();
  }
  /// Smallest edge id still stored (not yet evicted); next_edge_id() when
  /// nothing is stored.
  EdgeId first_stored_edge_id() const {
    if (!assigned_ids_) return base_edge_id_;
    return edge_ids_.empty() ? next_assigned_id_ : edge_ids_.front();
  }
  size_t num_stored_edges() const { return edges_.size(); }
  bool IsStored(EdgeId id) const;
  /// Id of the i-th stored edge, ascending (i < num_stored_edges()). The
  /// gap-tolerant way to iterate stored edges in assigned-id mode.
  EdgeId stored_edge_id(size_t i) const {
    return assigned_ids_ ? edge_ids_[i] : base_edge_id_ + i;
  }
  /// The record for a stored (non-evicted) edge id.
  const EdgeRecord& edge_record(EdgeId id) const;

  /// Largest timestamp ingested so far; -1 before the first edge.
  Timestamp watermark() const { return watermark_; }
  /// Smallest timestamp that is still live under the retention window.
  Timestamp MinLiveTs() const;

  // --- Adjacency ---------------------------------------------------------
  /// Live outgoing / incoming edges of `v`, ascending by timestamp.
  std::span<const AdjEntry> OutEdges(VertexId v) const {
    return out_[v].Live();
  }
  std::span<const AdjEntry> InEdges(VertexId v) const {
    return in_[v].Live();
  }

  const Interner& interner() const { return *interner_; }

  /// Cumulative count of evicted edges (monitoring / tests).
  uint64_t num_evicted_edges() const { return evicted_count_; }

 private:
  struct AdjList {
    std::vector<AdjEntry> entries;
    size_t start = 0;  ///< Entries before `start` belong to evicted edges.

    std::span<const AdjEntry> Live() const {
      return {entries.data() + start, entries.size() - start};
    }
    void PopFront();
  };

  /// Returns the dense id for (ext, label), creating the vertex on first
  /// sight; fails on label mismatch with the recorded label.
  StatusOr<VertexId> EnsureVertex(ExternalVertexId ext, LabelId label);

  /// Shared ingest body for AddEdge / AddEdgeWithId.
  StatusOr<EdgeId> AddEdgeImpl(const StreamEdge& e, EdgeId id);

  /// Evicts every stored edge whose timestamp has expired.
  void EvictExpired();

  const Interner* interner_;
  Timestamp retention_ = kMaxTimestamp;
  Timestamp watermark_ = -1;
  bool manual_eviction_ = false;

  std::unordered_map<ExternalVertexId, VertexId> vertex_index_;
  std::vector<LabelId> vertex_labels_;
  std::vector<ExternalVertexId> external_ids_;
  std::vector<AdjList> out_;
  std::vector<AdjList> in_;

  std::deque<EdgeRecord> edges_;  ///< Stored edges; front is the oldest.
  EdgeId base_edge_id_ = 0;       ///< Id of edges_.front() (sequential mode).
  uint64_t evicted_count_ = 0;

  /// Assigned-id (gap-tolerant) bookkeeping; engaged by AddEdgeWithId.
  bool assigned_ids_ = false;
  std::deque<EdgeId> edge_ids_;   ///< Parallel to edges_, ascending.
  EdgeId next_assigned_id_ = 0;   ///< Largest assigned id + 1.
};

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_DYNAMIC_GRAPH_H_
