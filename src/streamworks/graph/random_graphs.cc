#include "streamworks/graph/random_graphs.h"

#include <bit>
#include <string>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

/// Interns "VL0".."VLn-1" / "EL0".."ELn-1" and returns the ids.
std::vector<LabelId> InternNumberedLabels(Interner* interner,
                                          std::string_view prefix, int n) {
  std::vector<LabelId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    ids.push_back(interner->Intern(StrCat(prefix, i)));
  }
  return ids;
}

/// Shared scaffolding: fixed per-vertex labels, per-edge Zipf labels,
/// timestamps i / edges_per_tick.
class StreamAssembler {
 public:
  StreamAssembler(const RandomStreamOptions& opt, Interner* interner)
      : opt_(opt),
        rng_(opt.seed),
        vertex_labels_(InternNumberedLabels(interner, "VL",
                                            opt.num_vertex_labels)),
        edge_labels_(InternNumberedLabels(interner, "EL",
                                          opt.num_edge_labels)),
        vertex_label_sampler_(opt.num_vertex_labels, opt.vertex_label_skew),
        edge_label_sampler_(opt.num_edge_labels, opt.edge_label_skew) {
    SW_CHECK_GT(opt.num_vertices, 0);
    SW_CHECK_GT(opt.num_vertex_labels, 0);
    SW_CHECK_GT(opt.num_edge_labels, 0);
    SW_CHECK_GT(opt.edges_per_tick, 0);
    per_vertex_label_.reserve(opt.num_vertices);
    for (int v = 0; v < opt.num_vertices; ++v) {
      per_vertex_label_.push_back(
          vertex_labels_[vertex_label_sampler_.Sample(rng_)]);
    }
  }

  Rng& rng() { return rng_; }

  StreamEdge MakeEdge(uint64_t src, uint64_t dst, int index) {
    StreamEdge e;
    e.src = src;
    e.dst = dst;
    e.src_label = per_vertex_label_[src];
    e.dst_label = per_vertex_label_[dst];
    e.edge_label = edge_labels_[edge_label_sampler_.Sample(rng_)];
    e.ts = index / opt_.edges_per_tick;
    return e;
  }

 private:
  const RandomStreamOptions& opt_;
  Rng rng_;
  std::vector<LabelId> vertex_labels_;
  std::vector<LabelId> edge_labels_;
  ZipfSampler vertex_label_sampler_;
  ZipfSampler edge_label_sampler_;
  std::vector<LabelId> per_vertex_label_;
};

}  // namespace

std::vector<StreamEdge> GenerateUniformStream(const RandomStreamOptions& opt,
                                              Interner* interner) {
  StreamAssembler assembler(opt, interner);
  std::vector<StreamEdge> edges;
  edges.reserve(opt.num_edges);
  for (int i = 0; i < opt.num_edges; ++i) {
    const uint64_t src = assembler.rng().NextBounded(opt.num_vertices);
    const uint64_t dst = assembler.rng().NextBounded(opt.num_vertices);
    edges.push_back(assembler.MakeEdge(src, dst, i));
  }
  return edges;
}

std::vector<StreamEdge> GeneratePreferentialStream(
    const RandomStreamOptions& opt, Interner* interner) {
  StreamAssembler assembler(opt, interner);
  std::vector<StreamEdge> edges;
  edges.reserve(opt.num_edges);
  // Endpoint pool: every endpoint of every prior edge appears once, so a
  // draw from the pool is degree-proportional; mix in a uniform draw with
  // probability 0.25 so new vertices keep entering.
  std::vector<uint64_t> pool;
  pool.reserve(2 * opt.num_edges);
  auto draw = [&]() -> uint64_t {
    if (pool.empty() || assembler.rng().NextBool(0.25)) {
      return assembler.rng().NextBounded(opt.num_vertices);
    }
    return pool[assembler.rng().NextBounded(pool.size())];
  };
  for (int i = 0; i < opt.num_edges; ++i) {
    const uint64_t src = draw();
    const uint64_t dst = draw();
    edges.push_back(assembler.MakeEdge(src, dst, i));
    pool.push_back(src);
    pool.push_back(dst);
  }
  return edges;
}

std::vector<StreamEdge> GenerateRMatStream(const RandomStreamOptions& opt,
                                           const RMatParams& params,
                                           Interner* interner) {
  SW_CHECK(params.a + params.b + params.c <= 1.0 + 1e-9)
      << "RMAT quadrant probabilities exceed 1";
  StreamAssembler assembler(opt, interner);
  const int levels =
      std::bit_width(static_cast<unsigned>(opt.num_vertices - 1));
  std::vector<StreamEdge> edges;
  edges.reserve(opt.num_edges);
  for (int i = 0; i < opt.num_edges; ++i) {
    uint64_t src = 0;
    uint64_t dst = 0;
    do {
      src = 0;
      dst = 0;
      for (int level = 0; level < levels; ++level) {
        const double p = assembler.rng().NextDouble();
        src <<= 1;
        dst <<= 1;
        if (p < params.a) {
          // top-left quadrant: no bits set
        } else if (p < params.a + params.b) {
          dst |= 1;
        } else if (p < params.a + params.b + params.c) {
          src |= 1;
        } else {
          src |= 1;
          dst |= 1;
        }
      }
    } while (src >= static_cast<uint64_t>(opt.num_vertices) ||
             dst >= static_cast<uint64_t>(opt.num_vertices));
    edges.push_back(assembler.MakeEdge(src, dst, i));
  }
  return edges;
}

StatusOr<QueryGraph> GenerateRandomConnectedQuery(Rng& rng, int num_vertices,
                                                  int num_edges,
                                                  int num_vertex_labels,
                                                  int num_edge_labels,
                                                  Interner* interner) {
  if (num_vertices < 2 || num_edges < num_vertices - 1) {
    return Status::InvalidArgument(
        "need >= 2 vertices and enough edges for a spanning tree");
  }
  QueryGraphBuilder builder(interner);
  for (int v = 0; v < num_vertices; ++v) {
    builder.AddVertex(
        StrCat("VL", rng.NextBounded(num_vertex_labels)));
  }
  // Random spanning tree first (guarantees connectivity), then extras.
  for (int v = 1; v < num_vertices; ++v) {
    const auto other =
        static_cast<QueryVertexId>(rng.NextBounded(v));
    const auto self = static_cast<QueryVertexId>(v);
    const std::string label = StrCat("EL", rng.NextBounded(num_edge_labels));
    if (rng.NextBool()) {
      builder.AddEdge(self, other, label);
    } else {
      builder.AddEdge(other, self, label);
    }
  }
  for (int e = num_vertices - 1; e < num_edges; ++e) {
    const auto src =
        static_cast<QueryVertexId>(rng.NextBounded(num_vertices));
    const auto dst =
        static_cast<QueryVertexId>(rng.NextBounded(num_vertices));
    builder.AddEdge(src, dst, StrCat("EL", rng.NextBounded(num_edge_labels)));
  }
  return builder.Build(StrCat("random_q", rng.NextBounded(1u << 30)));
}

}  // namespace streamworks
