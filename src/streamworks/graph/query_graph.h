#ifndef STREAMWORKS_GRAPH_QUERY_GRAPH_H_
#define STREAMWORKS_GRAPH_QUERY_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/types.h"

namespace streamworks {

/// A directed, labelled edge of a query graph.
struct QueryEdge {
  QueryVertexId src = 0;
  QueryVertexId dst = 0;
  LabelId label = kInvalidLabelId;
};

/// Occurrence of an edge at a vertex, from that vertex's point of view.
struct QueryIncidence {
  QueryEdgeId edge = 0;
  QueryVertexId other = 0;  ///< The opposite endpoint.
  bool out = false;         ///< True if the vertex is the edge's source.
};

/// Immutable pattern graph: a small connected directed multigraph whose
/// vertices and edges carry interned type labels. Query graphs are built via
/// QueryGraphBuilder (programmatic) or ParseQueryText (DSL) and validated at
/// build time: connected, at least one edge, at most kMaxQuerySize vertices
/// and edges (vertex and edge subsets are 64-bit masks everywhere downstream).
class QueryGraph {
 public:
  int num_vertices() const { return static_cast<int>(vertex_labels_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  LabelId vertex_label(QueryVertexId v) const { return vertex_labels_[v]; }
  const QueryEdge& edge(QueryEdgeId e) const { return edges_[e]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  /// All edges incident to `v` (both directions), in edge-id order.
  const std::vector<QueryIncidence>& incident(QueryVertexId v) const {
    return incidence_[v];
  }

  /// Mask of vertices touched by any edge in `edge_set`.
  Bitset64 VerticesOfEdges(Bitset64 edge_set) const;

  /// Mask of all edges incident to any vertex in `vertex_set`.
  Bitset64 EdgesTouchingVertices(Bitset64 vertex_set) const;

  /// True if the subgraph induced by `edge_set` (with its endpoint vertices)
  /// is connected. The empty set is considered connected.
  bool IsEdgeSetConnected(Bitset64 edge_set) const;

  /// Mask of every query edge, {0..num_edges-1}.
  Bitset64 AllEdges() const { return Bitset64::FirstN(num_edges()); }
  /// Mask of every query vertex.
  Bitset64 AllVertices() const { return Bitset64::FirstN(num_vertices()); }

  /// Human-readable rendering using `interner` to resolve label names.
  std::string ToString(const Interner& interner) const;

  /// Optional descriptive name ("smurf_ddos", "fig2_news", ...).
  const std::string& name() const { return name_; }

 private:
  friend class QueryGraphBuilder;

  std::string name_;
  std::vector<LabelId> vertex_labels_;
  std::vector<QueryEdge> edges_;
  std::vector<std::vector<QueryIncidence>> incidence_;
};

/// Incremental construction of a QueryGraph.
///
///   QueryGraphBuilder b(&interner);
///   auto host = b.AddVertex("Host");
///   auto ip = b.AddVertex("IP");
///   b.AddEdge(host, ip, "hasIP");
///   SW_ASSIGN_OR_RETURN(QueryGraph q, b.Build("my_query"));
class QueryGraphBuilder {
 public:
  /// `interner` must outlive the builder; labels are interned through it.
  explicit QueryGraphBuilder(Interner* interner) : interner_(interner) {}

  /// Adds a vertex with the given type label and returns its id.
  QueryVertexId AddVertex(std::string_view label);

  /// Adds a directed edge src -> dst with the given type label.
  QueryEdgeId AddEdge(QueryVertexId src, QueryVertexId dst,
                      std::string_view label);

  /// Validates and returns the graph: non-empty, connected, within
  /// kMaxQuerySize, all edge endpoints in range.
  StatusOr<QueryGraph> Build(std::string_view name = "") const;

 private:
  Interner* interner_;
  std::vector<LabelId> vertex_labels_;
  std::vector<QueryEdge> edges_;
};

/// A query parsed from the text DSL: the pattern plus its time window.
struct ParsedQuery {
  QueryGraph graph;
  Timestamp window = kMaxTimestamp;
};

/// Parses the line-oriented query DSL:
///
///   # comment, blank lines ignored
///   query smurf_ddos
///   node a Attacker
///   node b Amplifier
///   edge a b icmpEchoReq
///   window 3600
///
/// Vertex names are arbitrary identifiers local to the file; `window` is
/// optional (defaults to unbounded). Returns InvalidArgument with a
/// line-numbered message on any malformed input.
StatusOr<ParsedQuery> ParseQueryText(std::string_view text,
                                     Interner* interner);

/// Parses a *query library*: one file holding several queries, each block
/// opened by its `query <name>` line:
///
///   query port_scan
///   node s Host
///   ...
///   window 30
///
///   query exfiltration
///   ...
///
/// Every block must begin with a `query` directive (node ids are local to
/// their block). Returns the queries in file order; errors carry the
/// file-global line number.
StatusOr<std::vector<ParsedQuery>> ParseQueryLibrary(std::string_view text,
                                                     Interner* interner);

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_QUERY_GRAPH_H_
