#ifndef STREAMWORKS_GRAPH_RANDOM_GRAPHS_H_
#define STREAMWORKS_GRAPH_RANDOM_GRAPHS_H_

#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// Parameters shared by the random stream generators. Vertex labels are
/// named "VL0".."VL<k-1>" and edge labels "EL0".."EL<k-1>"; each vertex gets
/// a fixed Zipf-distributed label at creation, and each edge an independent
/// Zipf-distributed label, so the same Interner and label counts let random
/// queries (GenerateRandomConnectedQuery) match random streams.
struct RandomStreamOptions {
  uint64_t seed = 1;
  int num_vertices = 100;
  int num_edges = 1000;
  int num_vertex_labels = 3;
  int num_edge_labels = 4;
  /// Zipf exponents for label popularity; 0 = uniform.
  double vertex_label_skew = 0.8;
  double edge_label_skew = 0.8;
  /// Edges sharing one timestamp tick; timestamps are i / edges_per_tick.
  int edges_per_tick = 10;
};

/// Uniform (Erdős–Rényi style) stream: each edge picks both endpoints
/// uniformly at random. Self-loops are permitted (they occur in real flow
/// data) but rare.
std::vector<StreamEdge> GenerateUniformStream(const RandomStreamOptions& opt,
                                              Interner* interner);

/// Preferential-attachment style stream: endpoints are drawn with
/// probability proportional to (current degree + 1), producing the heavy
/// degree skew of social/news graphs.
std::vector<StreamEdge> GeneratePreferentialStream(
    const RandomStreamOptions& opt, Interner* interner);

/// R-MAT recursive quadrant probabilities; d is implicitly 1 - a - b - c.
struct RMatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};

/// R-MAT stream over a 2^ceil(log2(num_vertices)) id space (ids are clipped
/// to num_vertices by rejection), matching internet-topology skew.
std::vector<StreamEdge> GenerateRMatStream(const RandomStreamOptions& opt,
                                           const RMatParams& params,
                                           Interner* interner);

/// Generates a random *connected* query graph with `num_vertices` vertices
/// and `num_edges >= num_vertices - 1` edges over the same "VLi"/"ELi" label
/// universe as the stream generators (labels drawn uniformly). Used by the
/// property-test and ablation sweeps.
StatusOr<QueryGraph> GenerateRandomConnectedQuery(Rng& rng, int num_vertices,
                                                  int num_edges,
                                                  int num_vertex_labels,
                                                  int num_edge_labels,
                                                  Interner* interner);

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_RANDOM_GRAPHS_H_
