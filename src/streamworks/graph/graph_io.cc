#include "streamworks/graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "streamworks/common/str_util.h"

namespace streamworks {

std::string SerializeEdgeStream(const std::vector<StreamEdge>& edges,
                                const Interner& interner) {
  std::ostringstream os;
  os << "# ts,src_id,src_label,dst_id,dst_label,edge_label\n";
  for (const StreamEdge& e : edges) {
    os << e.ts << ',' << e.src << ',' << interner.Name(e.src_label) << ','
       << e.dst << ',' << interner.Name(e.dst_label) << ','
       << interner.Name(e.edge_label) << '\n';
  }
  return os.str();
}

StatusOr<std::vector<StreamEdge>> ParseEdgeStream(std::string_view text,
                                                  Interner* interner) {
  std::vector<StreamEdge> edges;
  int line_no = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> fields = Split(line, ',');
    if (fields.size() != 6) {
      return Status::InvalidArgument(
          StrCat("edge stream line ", line_no, ": expected 6 fields, got ",
                 fields.size()));
    }
    StreamEdge e;
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!ParseInt64(StripWhitespace(fields[0]), &e.ts) ||
        !ParseUint64(StripWhitespace(fields[1]), &src) ||
        !ParseUint64(StripWhitespace(fields[3]), &dst)) {
      return Status::InvalidArgument(
          StrCat("edge stream line ", line_no, ": malformed numeric field"));
    }
    e.src = src;
    e.dst = dst;
    e.src_label = interner->Intern(StripWhitespace(fields[2]));
    e.dst_label = interner->Intern(StripWhitespace(fields[4]));
    e.edge_label = interner->Intern(StripWhitespace(fields[5]));
    edges.push_back(e);
  }
  return edges;
}

Status WriteEdgeStreamFile(const std::string& path,
                           const std::vector<StreamEdge>& edges,
                           const Interner& interner) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrCat("cannot open '", path, "' for writing"));
  }
  out << SerializeEdgeStream(edges, interner);
  out.close();
  if (!out) {
    return Status::IoError(StrCat("failed while writing '", path, "'"));
  }
  return OkStatus();
}

StatusOr<std::vector<StreamEdge>> ReadEdgeStreamFile(const std::string& path,
                                                     Interner* interner) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrCat("cannot open '", path, "' for reading"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseEdgeStream(buffer.str(), interner);
}

}  // namespace streamworks
