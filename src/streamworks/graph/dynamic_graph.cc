#include "streamworks/graph/dynamic_graph.h"

#include <algorithm>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

void DynamicGraph::AdjList::PopFront() {
  SW_DCHECK_LT(start, entries.size());
  ++start;
  // Compact once the dead prefix dominates, to bound memory.
  if (start > 64 && start * 2 > entries.size()) {
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<ptrdiff_t>(start));
    start = 0;
  }
}

void DynamicGraph::set_retention(Timestamp retention) {
  SW_CHECK_GT(retention, 0) << "retention must be positive";
  retention_ = retention;
}

StatusOr<VertexId> DynamicGraph::EnsureVertex(ExternalVertexId ext,
                                              LabelId label) {
  auto [it, inserted] = vertex_index_.try_emplace(
      ext, static_cast<VertexId>(vertex_labels_.size()));
  if (inserted) {
    vertex_labels_.push_back(label);
    external_ids_.push_back(ext);
    out_.emplace_back();
    in_.emplace_back();
    return it->second;
  }
  if (vertex_labels_[it->second] != label) {
    return Status::InvalidArgument(
        StrCat("vertex ", ext, " re-ingested with label '",
               interner_->Name(label), "' but was first seen as '",
               interner_->Name(vertex_labels_[it->second]), "'"));
  }
  return it->second;
}

StatusOr<EdgeId> DynamicGraph::AddEdgeImpl(const StreamEdge& e, EdgeId id) {
  if (e.ts < 0) {
    return Status::InvalidArgument(
        StrCat("edge timestamp must be non-negative, got ", e.ts));
  }
  if (e.ts < watermark_) {
    return Status::InvalidArgument(
        StrCat("edge timestamp ", e.ts, " decreases below watermark ",
               watermark_, "; the stream must be time-ordered"));
  }
  SW_ASSIGN_OR_RETURN(VertexId src, EnsureVertex(e.src, e.src_label));
  SW_ASSIGN_OR_RETURN(VertexId dst, EnsureVertex(e.dst, e.dst_label));

  edges_.push_back(EdgeRecord{src, dst, e.edge_label, e.ts});
  if (assigned_ids_) {
    edge_ids_.push_back(id);
    next_assigned_id_ = id + 1;
  }
  out_[src].entries.push_back(AdjEntry{dst, id, e.edge_label, e.ts});
  in_[dst].entries.push_back(AdjEntry{src, id, e.edge_label, e.ts});
  watermark_ = e.ts;
  if (!manual_eviction_) EvictExpired();
  return id;
}

StatusOr<EdgeId> DynamicGraph::AddEdge(const StreamEdge& e) {
  // In assigned-id mode this continues the assigned sequence — the shape
  // after a window restore, where ids were replayed explicitly and live
  // ingest then resumes with plain AddEdge.
  return AddEdgeImpl(e, next_edge_id());
}

StatusOr<EdgeId> DynamicGraph::AddEdgeWithId(const StreamEdge& e, EdgeId id) {
  if (!assigned_ids_) {
    SW_CHECK(edges_.empty() && base_edge_id_ == 0)
        << "cannot switch to assigned ids after sequential ingest";
    assigned_ids_ = true;
  }
  SW_CHECK_GE(id, next_assigned_id_) << "assigned edge ids must ascend";
  return AddEdgeImpl(e, id);
}

void DynamicGraph::FastForwardEdgeIds(EdgeId next) {
  if (!assigned_ids_) {
    SW_CHECK(edges_.empty() && base_edge_id_ == 0)
        << "cannot switch to assigned ids after sequential ingest";
    assigned_ids_ = true;
  }
  SW_CHECK_GE(next, next_assigned_id_) << "edge ids never run backwards";
  next_assigned_id_ = next;
}

void DynamicGraph::AdvanceWatermark(Timestamp watermark) {
  if (watermark > watermark_) watermark_ = watermark;
  EvictExpired();
}

bool DynamicGraph::IsStored(EdgeId id) const {
  if (!assigned_ids_) {
    return id >= base_edge_id_ && id < next_edge_id();
  }
  return std::binary_search(edge_ids_.begin(), edge_ids_.end(), id);
}

VertexId DynamicGraph::FindVertex(ExternalVertexId ext) const {
  auto it = vertex_index_.find(ext);
  return it == vertex_index_.end() ? kInvalidVertexId : it->second;
}

const EdgeRecord& DynamicGraph::edge_record(EdgeId id) const {
  if (!assigned_ids_) {
    SW_CHECK(id >= base_edge_id_ && id < next_edge_id())
        << "edge " << id << " is not stored (range [" << base_edge_id_
        << ", " << next_edge_id() << "))";
    return edges_[id - base_edge_id_];
  }
  const auto it = std::lower_bound(edge_ids_.begin(), edge_ids_.end(), id);
  SW_CHECK(it != edge_ids_.end() && *it == id)
      << "edge " << id << " is not stored on this shard";
  return edges_[static_cast<size_t>(it - edge_ids_.begin())];
}

Timestamp DynamicGraph::MinLiveTs() const {
  if (retention_ > watermark_) return 0;  // Also covers kMaxTimestamp.
  return watermark_ - retention_ + 1;
}

void DynamicGraph::EvictExpired() {
  const Timestamp min_live = MinLiveTs();
  while (!edges_.empty() && edges_.front().ts < min_live) {
    const EdgeRecord& record = edges_.front();
    const EdgeId front_id =
        assigned_ids_ ? edge_ids_.front() : base_edge_id_;
    // Arrival order equals per-vertex adjacency order, so the oldest stored
    // edge is exactly the first live entry of both endpoint lists.
    AdjList& src_out = out_[record.src];
    SW_DCHECK_EQ(src_out.entries[src_out.start].edge, front_id);
    src_out.PopFront();
    AdjList& dst_in = in_[record.dst];
    SW_DCHECK_EQ(dst_in.entries[dst_in.start].edge, front_id);
    dst_in.PopFront();
    edges_.pop_front();
    if (assigned_ids_) {
      edge_ids_.pop_front();
    } else {
      ++base_edge_id_;
    }
    ++evicted_count_;
  }
}

}  // namespace streamworks
