#ifndef STREAMWORKS_GRAPH_STREAM_EDGE_H_
#define STREAMWORKS_GRAPH_STREAM_EDGE_H_

#include <vector>

#include "streamworks/common/types.h"

namespace streamworks {

/// One record of the input stream: a typed edge between two externally
/// identified, typed vertices, carrying an event timestamp.
///
/// Vertex labels ride along on every edge so that the data graph can create
/// vertices on first sight without a separate vertex stream (the convention
/// of netflow- and news-style feeds, where entities are implied by records).
struct StreamEdge {
  ExternalVertexId src = 0;
  ExternalVertexId dst = 0;
  LabelId src_label = kInvalidLabelId;
  LabelId dst_label = kInvalidLabelId;
  LabelId edge_label = kInvalidLabelId;
  Timestamp ts = 0;

  friend bool operator==(const StreamEdge& a, const StreamEdge& b) {
    return a.src == b.src && a.dst == b.dst && a.src_label == b.src_label &&
           a.dst_label == b.dst_label && a.edge_label == b.edge_label &&
           a.ts == b.ts;
  }
};

/// A timestep's worth of edges (the paper's E_{k+1}). Edges inside a batch
/// are processed in order; timestamps are non-decreasing across the stream.
using EdgeBatch = std::vector<StreamEdge>;

/// One retained edge in external-id form together with its ingest id —
/// the unit of a window export/restore. Edge ids are part of the durable
/// state: match signatures and arrival-order anchor discipline both key
/// off them, so a recovered process must reproduce them exactly.
struct PersistedEdge {
  StreamEdge edge;
  EdgeId id = kInvalidEdgeId;
};

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_STREAM_EDGE_H_
