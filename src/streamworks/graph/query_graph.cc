#include "streamworks/graph/query_graph.h"

#include <map>
#include <sstream>

#include "streamworks/common/str_util.h"

namespace streamworks {

Bitset64 QueryGraph::VerticesOfEdges(Bitset64 edge_set) const {
  Bitset64 out;
  for (int e : edge_set) {
    out.Add(edges_[e].src);
    out.Add(edges_[e].dst);
  }
  return out;
}

Bitset64 QueryGraph::EdgesTouchingVertices(Bitset64 vertex_set) const {
  Bitset64 out;
  for (int v : vertex_set) {
    for (const QueryIncidence& inc : incidence_[v]) {
      out.Add(inc.edge);
    }
  }
  return out;
}

bool QueryGraph::IsEdgeSetConnected(Bitset64 edge_set) const {
  if (edge_set.Empty()) return true;
  // BFS over edges: start from one edge, repeatedly absorb edges sharing a
  // vertex with the frontier.
  Bitset64 reached_vertices = VerticesOfEdges(Bitset64::Single(
      edge_set.First()));
  Bitset64 remaining = edge_set - Bitset64::Single(edge_set.First());
  bool progress = true;
  while (progress && !remaining.Empty()) {
    progress = false;
    for (int e : remaining) {
      if (reached_vertices.Contains(edges_[e].src) ||
          reached_vertices.Contains(edges_[e].dst)) {
        reached_vertices.Add(edges_[e].src);
        reached_vertices.Add(edges_[e].dst);
        remaining.Remove(e);
        progress = true;
      }
    }
  }
  return remaining.Empty();
}

std::string QueryGraph::ToString(const Interner& interner) const {
  std::ostringstream os;
  os << "query";
  if (!name_.empty()) os << " " << name_;
  os << " {";
  for (int v = 0; v < num_vertices(); ++v) {
    if (v > 0) os << ",";
    os << " v" << v << ":" << interner.Name(vertex_labels_[v]);
  }
  os << ";";
  for (int e = 0; e < num_edges(); ++e) {
    os << " v" << static_cast<int>(edges_[e].src) << "-["
       << interner.Name(edges_[e].label) << "]->v"
       << static_cast<int>(edges_[e].dst);
  }
  os << " }";
  return os.str();
}

QueryVertexId QueryGraphBuilder::AddVertex(std::string_view label) {
  SW_CHECK_LT(vertex_labels_.size(), static_cast<size_t>(kMaxQuerySize))
      << "query vertex limit exceeded";
  vertex_labels_.push_back(interner_->Intern(label));
  return static_cast<QueryVertexId>(vertex_labels_.size() - 1);
}

QueryEdgeId QueryGraphBuilder::AddEdge(QueryVertexId src, QueryVertexId dst,
                                       std::string_view label) {
  SW_CHECK_LT(edges_.size(), static_cast<size_t>(kMaxQuerySize))
      << "query edge limit exceeded";
  edges_.push_back(QueryEdge{src, dst, interner_->Intern(label)});
  return static_cast<QueryEdgeId>(edges_.size() - 1);
}

StatusOr<QueryGraph> QueryGraphBuilder::Build(std::string_view name) const {
  if (edges_.empty()) {
    return Status::InvalidArgument("query graph must have at least one edge");
  }
  for (const QueryEdge& e : edges_) {
    if (e.src >= vertex_labels_.size() || e.dst >= vertex_labels_.size()) {
      return Status::InvalidArgument(
          StrCat("edge endpoint out of range: v", static_cast<int>(e.src),
                 " -> v", static_cast<int>(e.dst)));
    }
  }
  QueryGraph g;
  g.name_ = std::string(name);
  g.vertex_labels_ = vertex_labels_;
  g.edges_ = edges_;
  g.incidence_.resize(vertex_labels_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    const QueryEdge& e = edges_[i];
    const auto id = static_cast<QueryEdgeId>(i);
    g.incidence_[e.src].push_back(QueryIncidence{id, e.dst, true});
    if (e.dst != e.src) {
      g.incidence_[e.dst].push_back(QueryIncidence{id, e.src, false});
    }
  }
  if (!g.IsEdgeSetConnected(g.AllEdges())) {
    return Status::InvalidArgument("query graph must be connected");
  }
  // Vertices not touched by any edge would be unmatchable by an edge-driven
  // engine; reject them (isolated query vertices make no sense here).
  if (g.VerticesOfEdges(g.AllEdges()) != g.AllVertices()) {
    return Status::InvalidArgument("query graph has an isolated vertex");
  }
  return g;
}

StatusOr<ParsedQuery> ParseQueryText(std::string_view text,
                                     Interner* interner) {
  QueryGraphBuilder builder(interner);
  std::map<std::string, QueryVertexId, std::less<>> vertex_names;
  std::string name;
  Timestamp window = kMaxTimestamp;
  bool saw_window = false;

  int line_no = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string_view> tokens;
    for (std::string_view t : Split(line, ' ')) {
      if (!StripWhitespace(t).empty()) tokens.push_back(StripWhitespace(t));
    }
    const auto error = [&](std::string_view msg) {
      return Status::InvalidArgument(
          StrCat("query DSL line ", line_no, ": ", msg, " in '", line, "'"));
    };

    if (tokens[0] == "query") {
      if (tokens.size() != 2) return error("expected 'query <name>'");
      name = std::string(tokens[1]);
    } else if (tokens[0] == "node") {
      if (tokens.size() != 3) return error("expected 'node <id> <label>'");
      if (vertex_names.count(std::string(tokens[1])) > 0) {
        return error("duplicate node id");
      }
      vertex_names.emplace(std::string(tokens[1]),
                           builder.AddVertex(tokens[2]));
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return error("expected 'edge <src> <dst> <label>'");
      }
      auto src = vertex_names.find(tokens[1]);
      auto dst = vertex_names.find(tokens[2]);
      if (src == vertex_names.end()) return error("unknown source node");
      if (dst == vertex_names.end()) return error("unknown target node");
      builder.AddEdge(src->second, dst->second, tokens[3]);
    } else if (tokens[0] == "window") {
      if (tokens.size() != 2) return error("expected 'window <ticks>'");
      int64_t w = 0;
      if (!ParseInt64(tokens[1], &w) || w <= 0) {
        return error("window must be a positive integer");
      }
      if (saw_window) return error("duplicate window directive");
      saw_window = true;
      window = w;
    } else {
      return error("unknown directive");
    }
  }

  SW_ASSIGN_OR_RETURN(QueryGraph graph, builder.Build(name));
  return ParsedQuery{std::move(graph), window};
}

StatusOr<std::vector<ParsedQuery>> ParseQueryLibrary(std::string_view text,
                                                     Interner* interner) {
  // Split the file into blocks at each `query` directive, keeping a blank
  // prefix per block so ParseQueryText reports file-global line numbers.
  struct Block {
    std::string padded_text;
  };
  std::vector<Block> blocks;
  int line_no = 0;
  bool saw_content_before_first_query = false;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = StripWhitespace(raw_line);
    const bool is_query_directive =
        StartsWith(line, "query ") || line == "query";
    if (is_query_directive) {
      Block block;
      block.padded_text.assign(static_cast<size_t>(line_no - 1), '\n');
      blocks.push_back(std::move(block));
    } else if (blocks.empty() && !line.empty() && line[0] != '#') {
      saw_content_before_first_query = true;
    }
    if (!blocks.empty()) {
      blocks.back().padded_text.append(raw_line);
      blocks.back().padded_text.push_back('\n');
    }
  }
  if (saw_content_before_first_query) {
    return Status::InvalidArgument(
        "query library: directives before the first 'query' block");
  }
  if (blocks.empty()) {
    return Status::InvalidArgument("query library: no 'query' blocks");
  }
  std::vector<ParsedQuery> queries;
  queries.reserve(blocks.size());
  for (const Block& block : blocks) {
    SW_ASSIGN_OR_RETURN(ParsedQuery parsed,
                        ParseQueryText(block.padded_text, interner));
    queries.push_back(std::move(parsed));
  }
  return queries;
}

}  // namespace streamworks
