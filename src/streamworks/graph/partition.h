#ifndef STREAMWORKS_GRAPH_PARTITION_H_
#define STREAMWORKS_GRAPH_PARTITION_H_

#include <string>

#include "streamworks/common/hash.h"
#include "streamworks/common/logging.h"
#include "streamworks/common/types.h"

namespace streamworks {

/// Vertex-ownership policy for data-graph sharding: maps every external
/// vertex id to the shard that owns its adjacency. An edge is routed to the
/// shard(s) owning its endpoints, so the owner of `v` always holds the
/// complete incident edge set of `v` — the invariant the cross-shard match
/// exchange relies on when it forwards a partial match to the shard that can
/// continue expanding it.
///
/// Implementations must be pure functions of (vertex, num_shards): every
/// shard and the group's control thread evaluate ownership independently and
/// must agree, and they may do so concurrently (no internal state).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Owning shard for `v`, in [0, num_shards). `num_shards` >= 1.
  virtual int OwnerShard(ExternalVertexId v, int num_shards) const = 0;

  /// Human-readable policy name (metrics / logs).
  virtual std::string name() const = 0;
};

/// Default policy: SplitMix64-mixed hash modulo shard count. The mix step
/// matters — external ids are often dense sequences (row ids, netflow host
/// indices) and a bare modulo would correlate ownership with id arithmetic,
/// skewing shard load under structured id spaces.
class HashModuloPartitioner final : public Partitioner {
 public:
  /// `seed` perturbs the hash so tests can exercise different placements of
  /// the same stream.
  explicit HashModuloPartitioner(uint64_t seed = 0) : seed_(seed) {}

  int OwnerShard(ExternalVertexId v, int num_shards) const override {
    SW_DCHECK_GT(num_shards, 0);
    return static_cast<int>(Mix64(v ^ seed_) %
                            static_cast<uint64_t>(num_shards));
  }

  std::string name() const override { return "hash_modulo"; }

 private:
  uint64_t seed_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_PARTITION_H_
