#ifndef STREAMWORKS_GRAPH_GRAPH_IO_H_
#define STREAMWORKS_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {

/// Serialises an edge stream to the line format
///
///   ts,src_id,src_label,dst_id,dst_label,edge_label
///
/// with labels rendered as strings through `interner`. Lines starting with
/// '#' are comments. This is the interchange format used by file replay and
/// the example binaries.
std::string SerializeEdgeStream(const std::vector<StreamEdge>& edges,
                                const Interner& interner);

/// Parses the format produced by SerializeEdgeStream, interning labels.
/// Returns InvalidArgument with a line number on malformed input. Does not
/// require timestamps to be ordered (DynamicGraph enforces that on ingest).
StatusOr<std::vector<StreamEdge>> ParseEdgeStream(std::string_view text,
                                                  Interner* interner);

/// Writes `edges` to `path` in the SerializeEdgeStream format.
Status WriteEdgeStreamFile(const std::string& path,
                           const std::vector<StreamEdge>& edges,
                           const Interner& interner);

/// Reads an edge stream file written by WriteEdgeStreamFile.
StatusOr<std::vector<StreamEdge>> ReadEdgeStreamFile(const std::string& path,
                                                     Interner* interner);

}  // namespace streamworks

#endif  // STREAMWORKS_GRAPH_GRAPH_IO_H_
