#ifndef STREAMWORKS_SJTREE_EXCHANGE_H_
#define STREAMWORKS_SJTREE_EXCHANGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "streamworks/common/statusor.h"
#include "streamworks/common/types.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// Cross-shard match exchange for vertex-partitioned execution.
///
/// When the data graph is partitioned by vertex ownership, a partial match
/// can outgrow the shard it started on in two ways:
///
///   * a leaf expansion reaches a query edge whose scan vertex is owned by
///     another shard (only the owner holds that vertex's complete adjacency),
///   * an SJ-Tree insert targets a (parent, cut-assignment) whose *home
///     shard* — the shard designated to hold both siblings' matches for that
///     cut key — is elsewhere.
///
/// In both cases the match is serialised into a shard-independent wire form
/// and forwarded. Wire matches name vertices by external id (dense internal
/// ids are per-shard artifacts) and edges by their global ingest id, which
/// partitioned mode threads through every shard so the exactly-once anchor
/// discipline (candidate id < anchor id) keeps working across shards.

/// One vertex binding in wire form. The label rides along so the receiving
/// shard can intern a vertex it has never seen in its own edge subset.
struct WireVertexBinding {
  QueryVertexId qv = 0;
  ExternalVertexId vertex = 0;
  LabelId label = kInvalidLabelId;
};

/// One edge binding in wire form (global edge id + timestamp; the receiver
/// does not need the edge record itself, only identity and time).
struct WireEdgeBinding {
  QueryEdgeId qe = 0;
  EdgeId edge = kInvalidEdgeId;
  Timestamp ts = 0;
};

/// A partial (or complete) match in shard-independent form.
struct WireMatch {
  std::vector<WireVertexBinding> vertices;
  std::vector<WireEdgeBinding> edges;
};

enum class ExchangeKind : uint8_t {
  kExpand,    ///< Resume a leaf expansion at `step` of anchor plan `plan`.
  kInsert,    ///< Insert at decomposition node `node` (receiver is home).
  kComplete,  ///< Deliver a complete match (receiver is the callback home).
};

/// One forwarded unit of work.
struct ExchangeItem {
  ExchangeKind kind = ExchangeKind::kExpand;
  int query_id = -1;
  uint32_t plan = 0;  ///< Anchor-plan index (kExpand).
  int step = 0;       ///< Next expansion-order index (kExpand).
  int node = -1;      ///< Decomposition node (kInsert).
  WireMatch match;
};

/// Monotonic counters for one shard's exchange traffic.
struct ExchangeCounters {
  uint64_t sent_expansions = 0;
  uint64_t sent_inserts = 0;
  uint64_t sent_completions = 0;
  uint64_t received_expansions = 0;
  uint64_t received_inserts = 0;
  uint64_t received_completions = 0;

  uint64_t total_sent() const {
    return sent_expansions + sent_inserts + sent_completions;
  }
  uint64_t total_received() const {
    return received_expansions + received_inserts + received_completions;
  }
};

/// Per-shard outbox of forwarded matches plus the wire translation.
///
/// Threading: owned by one shard; Send/Drain run on that shard's worker (or
/// on the control thread while the group is quiesced — e.g. distributed
/// backfill of a mid-stream registration). Delivery to the destination
/// shard's queue is the group's job; batching happens naturally because the
/// worker drains the outbox once per processed task batch.
class MatchExchange {
 public:
  /// Queues `item` for `dest_shard`. Never blocks (exchange traffic must
  /// not participate in ingest backpressure, or two shards forwarding to
  /// each other through full queues would deadlock).
  void Send(int dest_shard, ExchangeItem item);

  /// Moves out everything queued since the last drain.
  std::vector<std::pair<int, ExchangeItem>> Drain();

  bool empty() const { return outbox_.empty(); }

  void CountReceived(ExchangeKind kind);
  const ExchangeCounters& counters() const { return counters_; }

  /// Serialises `m` (a match over `graph`'s id space) into wire form.
  static WireMatch ToWire(const DynamicGraph& graph, const Match& m);

  /// Rebuilds a local match from wire form, interning vertices this shard
  /// has never seen (their adjacency stays empty; expansion never scans a
  /// vertex the local shard doesn't own). Fails only on a vertex-label
  /// clash, which group-level ingest validation rules out — so callers may
  /// treat an error as a logic bug.
  static StatusOr<Match> Localize(DynamicGraph* graph,
                                  const QueryGraph& query,
                                  const WireMatch& wire);

 private:
  std::vector<std::pair<int, ExchangeItem>> outbox_;
  ExchangeCounters counters_;
};

/// Shard-routing seam the SJ-Tree and the leaf expansion consult in
/// partitioned mode. Implemented by the engine (which knows its shard
/// index, the partitioner, and the exchange); null router = the classic
/// single-graph execution.
///
/// The tree only calls Forward* for *remote* destinations — local work
/// always continues inline — so implementations never re-enter the tree.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual int self_shard() const = 0;

  /// Owning shard of an external vertex id.
  virtual int OwnerOfVertex(ExternalVertexId v) const = 0;

  /// Home shard for a stored match keyed by an external-id cut signature.
  /// Deterministic across shards (it routes both siblings of a join to the
  /// same place).
  virtual int HomeShard(uint64_t ext_cut_key) const = 0;

  /// Shard whose worker delivers the current query's completions (keeps
  /// the per-query single-threaded callback contract).
  virtual int callback_home() const = 0;

  /// The group's last epoch-flushed watermark: the only timestamp expiry
  /// may trust in sharded execution. The *local* graph watermark can run
  /// ahead of a forwarded match still in flight whose anchor is older than
  /// this shard's newest edge — expiring against it would erase join
  /// partners a single engine still sees. At an epoch broadcast the
  /// exchange is drained, so every future insert or probe derives from an
  /// edge at or past this watermark, making cutoffs against it safe.
  virtual Timestamp safe_watermark() const = 0;

  virtual void ForwardExpansion(int dest, uint32_t plan, int step,
                                const Match& m) = 0;
  virtual void ForwardInsert(int dest, int node, const Match& m) = 0;
  virtual void ForwardCompletion(int dest, const Match& m) = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SJTREE_EXCHANGE_H_
