#include "streamworks/sjtree/decomposition.h"

#include <functional>
#include <sstream>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

int Decomposition::Sibling(int i) const {
  const int p = nodes_[i].parent;
  SW_CHECK_GE(p, 0) << "root has no sibling";
  return nodes_[p].left == i ? nodes_[p].right : nodes_[p].left;
}

int Decomposition::Height() const {
  std::function<int(int)> height = [&](int n) -> int {
    if (IsLeaf(n)) return 1;
    return 1 + std::max(height(nodes_[n].left), height(nodes_[n].right));
  };
  return root_ < 0 ? 0 : height(root_);
}

Status Decomposition::Validate(const QueryGraph& query) const {
  if (root_ < 0 || nodes_.empty()) {
    return Status::InvalidArgument("decomposition has no nodes");
  }
  if (query_edges_ != query.num_edges()) {
    return Status::InvalidArgument("decomposition built for another query");
  }
  // Property 1: the root covers the query.
  if (nodes_[root_].edges != query.AllEdges()) {
    return Status::InvalidArgument(
        "root subgraph is not the whole query (Property 1)");
  }
  Bitset64 leaf_union;
  int leaf_edge_total = 0;
  for (int leaf : leaves_) {
    const DecompositionNode& n = nodes_[leaf];
    if (!IsLeaf(leaf)) {
      return Status::Internal("leaves_ contains an internal node");
    }
    if (n.edges.Empty()) {
      return Status::InvalidArgument("empty leaf subgraph");
    }
    if (!query.IsEdgeSetConnected(n.edges)) {
      return Status::InvalidArgument(
          "leaf subgraph is disconnected; local search requires connected "
          "search primitives");
    }
    if (leaf_union.Intersects(n.edges)) {
      return Status::InvalidArgument("leaves overlap on query edges");
    }
    leaf_union = leaf_union | n.edges;
    leaf_edge_total += n.edges.Count();
  }
  if (leaf_union != query.AllEdges()) {
    return Status::InvalidArgument(
        "leaves do not cover every query edge");
  }
  for (int i = 0; i < num_nodes(); ++i) {
    const DecompositionNode& n = nodes_[i];
    if (n.vertices != query.VerticesOfEdges(n.edges)) {
      return Status::Internal("cached vertex set is stale");
    }
    if (IsLeaf(i)) continue;
    const DecompositionNode& l = nodes_[n.left];
    const DecompositionNode& r = nodes_[n.right];
    if (l.parent != i || r.parent != i) {
      return Status::Internal("child parent pointers are inconsistent");
    }
    if (l.edges.Intersects(r.edges)) {
      return Status::InvalidArgument(
          "children share query edges (join must be edge-disjoint)");
    }
    if ((l.edges | r.edges) != n.edges) {
      return Status::InvalidArgument(
          "internal node is not the union of its children (Property 2)");
    }
    if (n.cut_vertices != (l.vertices & r.vertices)) {
      return Status::InvalidArgument(
          "cut subgraph is not the children's intersection (Property 4)");
    }
    if (n.cut_vertices.Empty()) {
      return Status::InvalidArgument(
          "empty cut: join would be a Cartesian product");
    }
  }
  return OkStatus();
}

std::string Decomposition::ToString(const QueryGraph& query,
                                    const Interner& interner) const {
  std::ostringstream os;
  std::function<void(int, int)> render = [&](int n, int depth) {
    const DecompositionNode& node = nodes_[n];
    os << std::string(static_cast<size_t>(depth) * 2, ' ');
    os << (IsLeaf(n) ? "leaf" : "join") << " n" << n << " {";
    bool first = true;
    for (int e : node.edges) {
      if (!first) os << ", ";
      first = false;
      const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
      os << "v" << static_cast<int>(qe.src) << "-["
         << interner.Name(qe.label) << "]->v" << static_cast<int>(qe.dst);
    }
    os << "}";
    if (!IsLeaf(n)) {
      os << " cut={";
      first = true;
      for (int v : node.cut_vertices) {
        if (!first) os << ", ";
        first = false;
        os << "v" << v << ":" << interner.Name(query.vertex_label(
                                   static_cast<QueryVertexId>(v)));
      }
      os << "}";
    }
    os << "\n";
    if (!IsLeaf(n)) {
      render(node.left, depth + 1);
      render(node.right, depth + 1);
    }
  };
  if (root_ >= 0) render(root_, 0);
  return os.str();
}

StatusOr<Decomposition> Decomposition::Finish(const QueryGraph& query,
                                              Decomposition d) {
  d.query_edges_ = query.num_edges();
  SW_RETURN_IF_ERROR(d.Validate(query));
  return d;
}

StatusOr<Decomposition> Decomposition::MakeLeftDeep(
    const QueryGraph& query, const std::vector<Bitset64>& ordered_leaves) {
  if (ordered_leaves.empty()) {
    return Status::InvalidArgument("no leaves given");
  }
  Decomposition d;
  auto add_leaf = [&](Bitset64 edges) {
    DecompositionNode n;
    n.edges = edges;
    n.vertices = query.VerticesOfEdges(edges);
    d.nodes_.push_back(n);
    d.leaves_.push_back(d.num_nodes() - 1);
    return d.num_nodes() - 1;
  };
  auto add_join = [&](int left, int right) {
    DecompositionNode n;
    n.edges = d.nodes_[left].edges | d.nodes_[right].edges;
    n.vertices = d.nodes_[left].vertices | d.nodes_[right].vertices;
    n.cut_vertices = d.nodes_[left].vertices & d.nodes_[right].vertices;
    n.left = left;
    n.right = right;
    d.nodes_.push_back(n);
    const int id = d.num_nodes() - 1;
    d.nodes_[left].parent = id;
    d.nodes_[right].parent = id;
    return id;
  };

  int acc = add_leaf(ordered_leaves[0]);
  for (size_t i = 1; i < ordered_leaves.size(); ++i) {
    const int leaf = add_leaf(ordered_leaves[i]);
    if (!d.nodes_[acc].vertices.Intersects(d.nodes_[leaf].vertices)) {
      return Status::InvalidArgument(StrCat(
          "left-deep join order disconnected at leaf ", i,
          ": no shared vertex with the accumulated prefix"));
    }
    acc = add_join(acc, leaf);
  }
  d.root_ = acc;
  return Finish(query, std::move(d));
}

StatusOr<Decomposition> Decomposition::MakeBalanced(
    const QueryGraph& query, const std::vector<Bitset64>& ordered_leaves) {
  if (ordered_leaves.empty()) {
    return Status::InvalidArgument("no leaves given");
  }
  Decomposition d;
  Status build_error = OkStatus();
  // Recursively bisect [lo, hi); returns node id or -1 on failure.
  std::function<int(size_t, size_t)> build = [&](size_t lo,
                                                 size_t hi) -> int {
    if (hi - lo == 1) {
      DecompositionNode n;
      n.edges = ordered_leaves[lo];
      n.vertices = query.VerticesOfEdges(n.edges);
      d.nodes_.push_back(n);
      d.leaves_.push_back(d.num_nodes() - 1);
      return d.num_nodes() - 1;
    }
    const size_t mid = lo + (hi - lo) / 2;
    const int left = build(lo, mid);
    if (left < 0) return -1;
    const int right = build(mid, hi);
    if (right < 0) return -1;
    if (!d.nodes_[left].vertices.Intersects(d.nodes_[right].vertices)) {
      build_error = Status::InvalidArgument(
          "balanced bisection produced a join with an empty cut");
      return -1;
    }
    DecompositionNode n;
    n.edges = d.nodes_[left].edges | d.nodes_[right].edges;
    n.vertices = d.nodes_[left].vertices | d.nodes_[right].vertices;
    n.cut_vertices = d.nodes_[left].vertices & d.nodes_[right].vertices;
    n.left = left;
    n.right = right;
    d.nodes_.push_back(n);
    const int id = d.num_nodes() - 1;
    d.nodes_[left].parent = id;
    d.nodes_[right].parent = id;
    return id;
  };
  d.root_ = build(0, ordered_leaves.size());
  if (d.root_ < 0) return build_error;
  return Finish(query, std::move(d));
}

StatusOr<Decomposition> Decomposition::MakeSingleLeaf(
    const QueryGraph& query) {
  Decomposition d;
  DecompositionNode n;
  n.edges = query.AllEdges();
  n.vertices = query.AllVertices();
  d.nodes_.push_back(n);
  d.leaves_.push_back(0);
  d.root_ = 0;
  return Finish(query, std::move(d));
}

}  // namespace streamworks
