#include "streamworks/sjtree/sj_tree.h"

#include <sstream>

#include "streamworks/common/hash.h"
#include "streamworks/common/logging.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/local_search.h"

namespace streamworks {

SjTree::SjTree(const QueryGraph* query, Decomposition decomposition,
               Timestamp window)
    : query_(query),
      decomposition_(std::move(decomposition)),
      window_(window),
      stores_(decomposition_.num_nodes()),
      stats_(decomposition_.num_nodes()) {
  SW_CHECK_OK(decomposition_.Validate(*query_));
  SW_CHECK_GT(window_, 0);
  // Precompute one anchor plan per (leaf, query edge in leaf): the arriving
  // edge may enter the leaf through any of its edges.
  for (int leaf : decomposition_.leaves()) {
    const Bitset64 leaf_edges = decomposition_.node(leaf).edges;
    for (int qe : leaf_edges) {
      AnchorPlan plan;
      plan.leaf = leaf;
      plan.anchor = static_cast<QueryEdgeId>(qe);
      plan.order = ConnectedEdgeOrder(*query_, leaf_edges, plan.anchor);
      const QueryEdge& qedge = query_->edge(plan.anchor);
      plan.edge_label = qedge.label;
      plan.src_label = query_->vertex_label(qedge.src);
      plan.dst_label = query_->vertex_label(qedge.dst);
      anchor_plans_.push_back(std::move(plan));
    }
  }
}

Timestamp SjTree::Cutoff(Timestamp watermark) const {
  if (window_ == kMaxTimestamp || window_ > watermark) return 0;
  return watermark - window_ + 1;
}

uint64_t SjTree::CutKey(int parent, const Match& m) const {
  const Bitset64 cut = decomposition_.node(parent).cut_vertices;
  uint64_t h = 0x536a74726565ull;  // arbitrary seed
  for (int qv : cut) {
    SW_DCHECK(m.HasVertex(static_cast<QueryVertexId>(qv)))
        << "cut vertex unbound in stored match";
    h = HashCombine(h, (static_cast<uint64_t>(qv) << 40) ^
                           m.vertex(static_cast<QueryVertexId>(qv)));
  }
  return h;
}

uint64_t SjTree::ExtCutKey(const DynamicGraph& graph, int parent,
                           const Match& m) const {
  const Bitset64 cut = decomposition_.node(parent).cut_vertices;
  uint64_t h = 0x45787443757400ull;  // arbitrary seed, distinct from CutKey
  h = HashCombine(h, static_cast<uint64_t>(parent));
  for (int qv : cut) {
    SW_DCHECK(m.HasVertex(static_cast<QueryVertexId>(qv)))
        << "cut vertex unbound in stored match";
    h = HashCombine(
        h, (static_cast<uint64_t>(qv) << 40) ^
               Mix64(graph.external_id(
                   m.vertex(static_cast<QueryVertexId>(qv)))));
  }
  return h;
}

void SjTree::InsertAndPropagate(const DynamicGraph& graph, int node,
                                const Match& m,
                                std::vector<Match>* completed,
                                ShardRouter* router) {
  if (node == decomposition_.root()) {
    ++stats_[node].matches_inserted;
    ++completed_count_;
    if (router != nullptr) {
      const int home = router->callback_home();
      if (home != router->self_shard()) {
        router->ForwardCompletion(home, m);
        return;
      }
    }
    completed->push_back(m);
    return;
  }
  const int parent = decomposition_.node(node).parent;
  if (router != nullptr) {
    const int home = router->HomeShard(ExtCutKey(graph, parent, m));
    if (home != router->self_shard()) {
      router->ForwardInsert(home, node, m);
      return;
    }
  }
  ++stats_[node].matches_inserted;
  const int sibling = decomposition_.Sibling(node);
  const uint64_t key = CutKey(parent, m);
  stores_[node].Insert(key, m);
  const size_t total = TotalPartialMatches();
  peak_total_ = std::max(peak_total_, total);

  // Probe the sibling's collection through the parent's cut (§4.2): the
  // hash key equates cut-vertex assignments; JoinCompatible re-validates
  // them exactly and adds injectivity + window checks. In sharded mode the
  // probe stays local by construction (both siblings of a cut assignment
  // home to the same shard), but the lazy-expiry cutoff must come from the
  // router's *safe* watermark, never the local graph's: the local
  // watermark can run ahead of a forwarded match still in flight, and an
  // eager cutoff would erase join partners a single engine still sees. A
  // lagging cutoff merely keeps more matches alive — those fail the window
  // check anyway.
  ++stats_[node].probes;
  const Timestamp cutoff = Cutoff(
      router != nullptr ? router->safe_watermark() : graph.watermark());
  std::vector<Match> combined;  // buffered: the probe must not re-enter
  stores_[sibling].ProbeKey(key, cutoff, [&](const Match& s) {
    ++stats_[node].join_attempts;
    if (JoinCompatible(m, s, window_)) {
      ++stats_[node].joins_succeeded;
      combined.push_back(Match::Union(m, s));
    }
  });
  for (const Match& c : combined) {
    InsertAndPropagate(graph, parent, c, completed, router);
  }
}

void SjTree::RunAnchorPlan(const DynamicGraph& graph, size_t plan_index,
                           EdgeId edge_id, std::vector<Match>* completed) {
  const AnchorPlan& plan = anchor_plans_[plan_index];
  FindAnchoredMatches(graph, *query_, plan.order, edge_id, window_,
                      [&](const Match& m) {
                        InsertAndPropagate(graph, plan.leaf, m, completed,
                                           nullptr);
                        return true;
                      });
}

void SjTree::ForwardExpandBranch(const DynamicGraph& graph,
                                 size_t plan_index, const Match& partial,
                                 size_t step, ShardRouter* router) const {
  // Recompute the step's scan vertex (same side rule as the gated
  // backtracker: enumerate from src when bound, else from dst) to find the
  // owning shard.
  const AnchorPlan& plan = anchor_plans_[plan_index];
  const QueryEdge& qedge = query_->edge(plan.order[step]);
  const VertexId scan = partial.HasVertex(qedge.src)
                            ? partial.vertex(qedge.src)
                            : partial.vertex(qedge.dst);
  const int dest = router->OwnerOfVertex(graph.external_id(scan));
  SW_DCHECK_NE(dest, router->self_shard())
      << "gate refused a locally owned scan vertex";
  router->ForwardExpansion(dest, static_cast<uint32_t>(plan_index),
                           static_cast<int>(step), partial);
}

void SjTree::RunAnchorPlanSharded(const DynamicGraph& graph,
                                  size_t plan_index, EdgeId edge_id,
                                  ShardRouter* router,
                                  std::vector<Match>* completed) {
  const AnchorPlan& plan = anchor_plans_[plan_index];
  FindAnchoredMatchesSharded(
      graph, *query_, plan.order, edge_id, window_,
      [&](VertexId v) {
        return router->OwnerOfVertex(graph.external_id(v)) ==
               router->self_shard();
      },
      [&](const Match& m) {
        InsertAndPropagate(graph, plan.leaf, m, completed, router);
        return true;
      },
      [&](const Match& partial, size_t step) {
        ForwardExpandBranch(graph, plan_index, partial, step, router);
      });
}

void SjTree::ResumeExpansion(const DynamicGraph& graph, size_t plan_index,
                             size_t step, Match* partial,
                             ShardRouter* router,
                             std::vector<Match>* completed) {
  const AnchorPlan& plan = anchor_plans_[plan_index];
  ResumeAnchoredMatchesSharded(
      graph, *query_, plan.order, step, window_, partial,
      [&](VertexId v) {
        return router->OwnerOfVertex(graph.external_id(v)) ==
               router->self_shard();
      },
      [&](const Match& m) {
        InsertAndPropagate(graph, plan.leaf, m, completed, router);
        return true;
      },
      [&](const Match& p, size_t s) {
        ForwardExpandBranch(graph, plan_index, p, s, router);
      });
}

void SjTree::InsertForwarded(const DynamicGraph& graph, int node,
                             const Match& m, ShardRouter* router,
                             std::vector<Match>* completed) {
  // We are the home of (parent(node), m's cut assignment); the routing
  // check inside InsertAndPropagate re-derives that and proceeds locally.
  InsertAndPropagate(graph, node, m, completed, router);
}

void SjTree::ProcessEdge(const DynamicGraph& graph, EdgeId edge_id,
                         std::vector<Match>* completed) {
  const EdgeRecord& record = graph.edge_record(edge_id);
  const LabelId src_label = graph.vertex_label(record.src);
  const LabelId dst_label = graph.vertex_label(record.dst);
  for (size_t i = 0; i < anchor_plans_.size(); ++i) {
    const AnchorPlan& plan = anchor_plans_[i];
    if (plan.edge_label != record.label || plan.src_label != src_label ||
        plan.dst_label != dst_label) {
      continue;
    }
    RunAnchorPlan(graph, i, edge_id, completed);
  }
}

void SjTree::ExpireOldMatches(Timestamp watermark) {
  const Timestamp cutoff = Cutoff(watermark);
  if (cutoff <= 0) return;
  for (MatchStore& store : stores_) store.Expire(cutoff);
}

size_t SjTree::TotalPartialMatches() const {
  size_t total = 0;
  for (const MatchStore& store : stores_) total += store.size();
  return total;
}

double SjTree::MaxMatchedFraction() const {
  if (completed_count_ > 0) return 1.0;
  double best = 0;
  for (int n = 0; n < decomposition_.num_nodes(); ++n) {
    if (stores_[n].size() == 0) continue;
    best = std::max(best, static_cast<double>(
                              decomposition_.node(n).edges.Count()) /
                              query_->num_edges());
  }
  return best;
}

std::string SjTree::DebugString() const {
  std::ostringstream os;
  os << "SjTree(query=" << query_->name() << ", window=" << window_ << ")\n";
  for (int n = 0; n < decomposition_.num_nodes(); ++n) {
    os << "  n" << n << (decomposition_.IsLeaf(n) ? " leaf" : " join")
       << " edges=" << decomposition_.node(n).edges.Count()
       << " live=" << stores_[n].size()
       << " inserted=" << stats_[n].matches_inserted
       << " join_attempts=" << stats_[n].join_attempts
       << " joined=" << stats_[n].joins_succeeded << "\n";
  }
  os << "  completed=" << completed_count_ << "\n";
  return os.str();
}

}  // namespace streamworks
