#ifndef STREAMWORKS_SJTREE_MATCH_STORE_H_
#define STREAMWORKS_SJTREE_MATCH_STORE_H_

#include <unordered_map>

#include "streamworks/common/types.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// The match collection of one SJ-Tree node (Property 3), hash-indexed by
/// the *join key*: the signature of the data vertices assigned to the parent
/// node's cut vertices. Sibling nodes index by the same cut, so combining
/// partial matches (paper §4.2) is one hash probe instead of a scan.
///
/// Expiry is lazy: a partial match whose earliest edge has fallen further
/// than the query window behind the stream watermark can never be part of a
/// future completion (any future completion's span would be >= window), so
/// probes erase such entries in passing and the engine runs periodic full
/// sweeps to bound memory between probes.
class MatchStore {
 public:
  void Insert(uint64_t key, const Match& m) {
    map_.emplace(key, m);
    ++total_inserted_;
    peak_size_ = std::max(peak_size_, map_.size());
  }

  /// Invokes `f` on every live match stored under `key`; erases dead ones
  /// (min_ts < cutoff) encountered on the way. `f` must not touch this
  /// store. Returns the number of live matches visited.
  template <typename F>
  size_t ProbeKey(uint64_t key, Timestamp cutoff, F&& f) {
    size_t visited = 0;
    auto [it, end] = map_.equal_range(key);
    while (it != end) {
      if (it->second.min_ts() < cutoff) {
        it = map_.erase(it);
        ++total_expired_;
        continue;
      }
      ++visited;
      f(it->second);
      ++it;
    }
    return visited;
  }

  /// Full sweep: erases every dead match.
  void Expire(Timestamp cutoff) {
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.min_ts() < cutoff) {
        it = map_.erase(it);
        ++total_expired_;
      } else {
        ++it;
      }
    }
  }

  /// Invokes `f(key, match)` on every stored match (live or not-yet-swept).
  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [key, match] : map_) f(key, match);
  }

  size_t size() const { return map_.size(); }
  size_t peak_size() const { return peak_size_; }
  uint64_t total_inserted() const { return total_inserted_; }
  uint64_t total_expired() const { return total_expired_; }

 private:
  std::unordered_multimap<uint64_t, Match> map_;
  size_t peak_size_ = 0;
  uint64_t total_inserted_ = 0;
  uint64_t total_expired_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SJTREE_MATCH_STORE_H_
