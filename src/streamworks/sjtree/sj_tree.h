#ifndef STREAMWORKS_SJTREE_SJ_TREE_H_
#define STREAMWORKS_SJTREE_SJ_TREE_H_

#include <string>
#include <vector>

#include "streamworks/common/types.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"
#include "streamworks/sjtree/decomposition.h"
#include "streamworks/sjtree/exchange.h"
#include "streamworks/sjtree/match_store.h"

namespace streamworks {

/// How one arriving data edge can enter one SJ-Tree leaf: the anchor query
/// edge plus the precomputed expansion order for the rest of the leaf's
/// subgraph, and the label triple used for routing.
struct AnchorPlan {
  int leaf = -1;                     ///< Decomposition node id.
  QueryEdgeId anchor = 0;            ///< order[0].
  std::vector<QueryEdgeId> order;    ///< ConnectedEdgeOrder of the leaf.
  LabelId edge_label = kInvalidLabelId;
  LabelId src_label = kInvalidLabelId;
  LabelId dst_label = kInvalidLabelId;
};

/// Per-node runtime counters (metrics and the Fig. 7 partial-match series).
struct SjNodeStats {
  uint64_t matches_inserted = 0;
  uint64_t probes = 0;
  uint64_t join_attempts = 0;   ///< JoinCompatible evaluations.
  uint64_t joins_succeeded = 0;
};

/// The Subgraph Join Tree (paper §3.2): the incremental matcher for one
/// registered query. Owns a match collection per decomposition node and
/// implements the §4.2 execution loop:
///
///   1. a new data edge is locally searched against each leaf it can anchor
///      (ProcessEdge / RunAnchorPlan);
///   2. every match inserted at a node probes the sibling's collection via
///      the parent's cut-vertex join key;
///   3. validated combinations insert at the parent, repeating upward;
///   4. a match inserted at the root is a complete result and is emitted.
///
/// Exactly-once emission: each leaf match is created exactly once (its
/// anchor is its newest data edge — see local_search.h), and each internal
/// combination once (created when the later of the two child matches
/// inserts). The equivalence property suite checks this against two
/// independent oracles.
class SjTree {
 public:
  /// `query` must outlive the tree. `window` is the query's strict time
  /// window tW (kMaxTimestamp = unbounded).
  SjTree(const QueryGraph* query, Decomposition decomposition,
         Timestamp window);

  const QueryGraph& query() const { return *query_; }
  const Decomposition& decomposition() const { return decomposition_; }
  Timestamp window() const { return window_; }

  /// All (leaf, anchor-edge) plans, for engine-level label routing.
  const std::vector<AnchorPlan>& anchor_plans() const {
    return anchor_plans_;
  }

  /// Runs every anchor plan whose labels match the new edge; appends
  /// complete matches to *completed. The edge must already be in `graph`
  /// and be its newest (the engine ingests, then calls this).
  void ProcessEdge(const DynamicGraph& graph, EdgeId edge_id,
                   std::vector<Match>* completed);

  /// Runs a single anchor plan (engine routing path). The caller has
  /// already checked the plan's labels against the edge.
  void RunAnchorPlan(const DynamicGraph& graph, size_t plan_index,
                     EdgeId edge_id, std::vector<Match>* completed);

  // --- Sharded (vertex-partitioned) execution ------------------------------
  // One SJ-Tree instance lives on every shard; `graph` is the shard's
  // partition of the data graph (global edge ids). Work that leaves the
  // shard — an expansion whose scan vertex is foreign, an insert whose
  // (parent, cut-assignment) home is elsewhere, a completion whose
  // callback home is elsewhere — goes through `router` instead of running
  // locally; work arriving from other shards enters through
  // ResumeExpansion / InsertForwarded. The match sets produced across all
  // shards equal a single-graph run's exactly (the routing only relocates
  // each exactly-once event, it never duplicates or drops one).

  /// Sharded RunAnchorPlan. Run only on the shard that owns the arriving
  /// edge's source vertex, so each anchor fires exactly once group-wide.
  void RunAnchorPlanSharded(const DynamicGraph& graph, size_t plan_index,
                            EdgeId edge_id, ShardRouter* router,
                            std::vector<Match>* completed);

  /// Continues a forwarded leaf expansion at `step` of `plan_index`'s
  /// expansion order. This shard owns the step's scan vertex.
  void ResumeExpansion(const DynamicGraph& graph, size_t plan_index,
                       size_t step, Match* partial, ShardRouter* router,
                       std::vector<Match>* completed);

  /// Inserts a forwarded match at `node`; this shard is the home of the
  /// match's (parent, cut-assignment) key.
  void InsertForwarded(const DynamicGraph& graph, int node, const Match& m,
                       ShardRouter* router, std::vector<Match>* completed);

  /// Sweeps every node store, dropping partial matches too old to ever
  /// reach the root. Engine calls this periodically; probes also expire
  /// lazily in passing.
  void ExpireOldMatches(Timestamp watermark);

  // --- Introspection ------------------------------------------------------
  /// Live partial matches currently stored at `node`.
  size_t NumPartialMatches(int node) const { return stores_[node].size(); }
  /// Sum over all non-root nodes.
  size_t TotalPartialMatches() const;
  /// Largest total ever observed (after inserts).
  size_t PeakTotalPartialMatches() const { return peak_total_; }
  const SjNodeStats& node_stats(int node) const { return stats_[node]; }
  uint64_t num_completed() const { return completed_count_; }

  /// Largest fraction of the query's edges covered by any node that
  /// currently holds at least one live partial match (including complete
  /// matches as 1.0) — the Fig. 7 "percent matched" series.
  double MaxMatchedFraction() const;

  /// Multi-line dump of per-node occupancy for debugging.
  std::string DebugString() const;

 private:
  /// Join key of `m` under `parent`'s cut vertices (graph-local ids; used
  /// to index the local stores).
  uint64_t CutKey(int parent, const Match& m) const;

  /// Cut-key over *external* vertex ids: the shard-independent signature
  /// the router hashes into a home shard. Local ids would disagree between
  /// shards (each numbers vertices by its own ingest order) and siblings
  /// would scatter.
  uint64_t ExtCutKey(const DynamicGraph& graph, int parent,
                     const Match& m) const;

  /// Property-3 insert + §4.2 upward combination. Appends completions.
  /// With a router, work whose home is remote is forwarded instead;
  /// locally-homed work proceeds exactly as the classic path.
  void InsertAndPropagate(const DynamicGraph& graph, int node,
                          const Match& m, std::vector<Match>* completed,
                          ShardRouter* router);

  /// Hands an expansion branch stopped at `step` to the shard owning the
  /// step's scan vertex.
  void ForwardExpandBranch(const DynamicGraph& graph, size_t plan_index,
                           const Match& partial, size_t step,
                           ShardRouter* router) const;

  /// Dead-match cutoff for the current watermark.
  Timestamp Cutoff(Timestamp watermark) const;

  const QueryGraph* query_;
  Decomposition decomposition_;
  Timestamp window_;

  std::vector<AnchorPlan> anchor_plans_;
  std::vector<MatchStore> stores_;   ///< Indexed by decomposition node id.
  std::vector<SjNodeStats> stats_;
  uint64_t completed_count_ = 0;
  size_t peak_total_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SJTREE_SJ_TREE_H_
