#include "streamworks/sjtree/exchange.h"

#include "streamworks/common/logging.h"

namespace streamworks {

void MatchExchange::Send(int dest_shard, ExchangeItem item) {
  switch (item.kind) {
    case ExchangeKind::kExpand:
      ++counters_.sent_expansions;
      break;
    case ExchangeKind::kInsert:
      ++counters_.sent_inserts;
      break;
    case ExchangeKind::kComplete:
      ++counters_.sent_completions;
      break;
  }
  outbox_.emplace_back(dest_shard, std::move(item));
}

std::vector<std::pair<int, ExchangeItem>> MatchExchange::Drain() {
  std::vector<std::pair<int, ExchangeItem>> out;
  out.swap(outbox_);
  return out;
}

void MatchExchange::CountReceived(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kExpand:
      ++counters_.received_expansions;
      break;
    case ExchangeKind::kInsert:
      ++counters_.received_inserts;
      break;
    case ExchangeKind::kComplete:
      ++counters_.received_completions;
      break;
  }
}

WireMatch MatchExchange::ToWire(const DynamicGraph& graph, const Match& m) {
  WireMatch wire;
  const Bitset64 vertices = m.bound_vertices();
  const Bitset64 edges = m.bound_edges();
  wire.vertices.reserve(static_cast<size_t>(vertices.Count()));
  wire.edges.reserve(static_cast<size_t>(edges.Count()));
  for (int qv : vertices) {
    const VertexId dv = m.vertex(static_cast<QueryVertexId>(qv));
    wire.vertices.push_back(WireVertexBinding{
        static_cast<QueryVertexId>(qv), graph.external_id(dv),
        graph.vertex_label(dv)});
  }
  for (int qe : edges) {
    wire.edges.push_back(WireEdgeBinding{
        static_cast<QueryEdgeId>(qe), m.edge(static_cast<QueryEdgeId>(qe)),
        m.edge_ts(static_cast<QueryEdgeId>(qe))});
  }
  return wire;
}

StatusOr<Match> MatchExchange::Localize(DynamicGraph* graph,
                                        const QueryGraph& query,
                                        const WireMatch& wire) {
  Match m(query);
  for (const WireVertexBinding& vb : wire.vertices) {
    SW_ASSIGN_OR_RETURN(const VertexId dv,
                        graph->InternVertex(vb.vertex, vb.label));
    m.BindVertex(vb.qv, dv);
  }
  for (const WireEdgeBinding& eb : wire.edges) {
    m.BindEdge(eb.qe, eb.edge, eb.ts);
  }
  return m;
}

}  // namespace streamworks
