#ifndef STREAMWORKS_SJTREE_DECOMPOSITION_H_
#define STREAMWORKS_SJTREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/query_graph.h"

namespace streamworks {

/// One node of a query decomposition: the structural skeleton of an SJ-Tree
/// node (paper Definition 4.1.1). `edges` is the query subgraph VSG{n} as an
/// edge mask; `vertices` its endpoint set; `cut_vertices` is CUT-SUBGRAPH(n)
/// (Property 4) for internal nodes.
struct DecompositionNode {
  Bitset64 edges;
  Bitset64 vertices;
  Bitset64 cut_vertices;  ///< Empty for leaves.
  int left = -1;          ///< Child index, -1 for leaves.
  int right = -1;
  int parent = -1;        ///< -1 for the root.

  friend bool operator==(const DecompositionNode& a,
                         const DecompositionNode& b) = default;
};

/// A validated binary decomposition of a query graph: the static shape of an
/// SJ-Tree. Construction goes through MakeLeftDeep / MakeBalanced (from an
/// ordered list of leaf subgraphs, produced by the planner) and always ends
/// in Validate(), which enforces:
///
///  * leaves partition the query edge set, each leaf non-empty & connected
///    (search primitives must admit local search);
///  * every internal node's edge set is the disjoint union of its
///    children's (Property 2, with the paper's union-join);
///  * every internal node's children share at least one vertex — the cut is
///    non-empty, so the join is an equi-join on vertices, never a Cartesian
///    product;
///  * the root covers the whole query (Property 1).
class Decomposition {
 public:
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const DecompositionNode& node(int i) const { return nodes_[i]; }
  int root() const { return root_; }
  bool IsLeaf(int i) const { return nodes_[i].left < 0; }

  /// Node ids of all leaves, in join order (the order leaves were given).
  const std::vector<int>& leaves() const { return leaves_; }

  /// The sibling of non-root node `i`.
  int Sibling(int i) const;

  /// Number of edges in the query this decomposes.
  int query_edges() const { return query_edges_; }

  /// Height of the tree (root alone = 1).
  int Height() const;

  /// Structural validation against `query`; returns the first violated
  /// property as InvalidArgument. Called by the factory functions; exposed
  /// for tests and for externally supplied decompositions.
  Status Validate(const QueryGraph& query) const;

  /// Render as an indented tree with label names, for logs and the plan
  /// explorer example.
  std::string ToString(const QueryGraph& query,
                       const Interner& interner) const;

  /// Builds the left-deep tree join(...join(join(L0, L1), L2)..., Lk).
  /// `ordered_leaves` must partition the query edges; consecutive joins
  /// must be connected (each leaf shares a vertex with the union of its
  /// predecessors) or an InvalidArgument is returned.
  static StatusOr<Decomposition> MakeLeftDeep(
      const QueryGraph& query, const std::vector<Bitset64>& ordered_leaves);

  /// Builds a balanced tree by recursive bisection of `ordered_leaves`.
  /// Fails (InvalidArgument) if any internal join would have an empty cut;
  /// callers typically fall back to MakeLeftDeep.
  static StatusOr<Decomposition> MakeBalanced(
      const QueryGraph& query, const std::vector<Bitset64>& ordered_leaves);

  /// Single-node degenerate decomposition (the whole query as one leaf):
  /// turns the SJ-Tree engine into the §3.1 naive incremental matcher.
  /// Valid only because the root is allowed to be a leaf in this one case.
  static StatusOr<Decomposition> MakeSingleLeaf(const QueryGraph& query);

  /// Structural equality: same node list (subgraphs, cuts, wiring) and
  /// root. Used by adaptive re-planning to detect no-op plans.
  friend bool operator==(const Decomposition& a, const Decomposition& b) {
    return a.nodes_ == b.nodes_ && a.root_ == b.root_ &&
           a.leaves_ == b.leaves_;
  }

 private:
  std::vector<DecompositionNode> nodes_;
  std::vector<int> leaves_;
  int root_ = -1;
  int query_edges_ = 0;

  static StatusOr<Decomposition> Finish(const QueryGraph& query,
                                        Decomposition d);
};

}  // namespace streamworks

#endif  // STREAMWORKS_SJTREE_DECOMPOSITION_H_
