#ifndef STREAMWORKS_COMMON_HASH_H_
#define STREAMWORKS_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace streamworks {

/// 64-bit finalizer from SplitMix64 / MurmurHash3. Good avalanche behaviour
/// for integer keys; used for join-key hashing and match signatures.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combiner: fold `value` into the running hash `seed`.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over raw bytes; used for string interning.
inline uint64_t HashBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_HASH_H_
