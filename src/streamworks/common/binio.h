#ifndef STREAMWORKS_COMMON_BINIO_H_
#define STREAMWORKS_COMMON_BINIO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace streamworks {

/// Little-endian put/get via memcpy: on LE hosts (the common case) these
/// compile to single unaligned loads/stores. Shared by the FEEDB wire
/// codec and the on-disk durability formats (WAL records, snapshots) so
/// the two can never disagree on integer encoding.
template <typename T>
inline void PutLe(std::string* out, T v) {
  if constexpr (std::endian::native != std::endian::little) {
    T swapped = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      swapped |= static_cast<T>((v >> (8 * i)) & 0xFF)
                 << (8 * (sizeof(T) - 1 - i));
    }
    v = swapped;
  }
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out->append(bytes, sizeof(T));
}

inline void PutU16(std::string* out, uint16_t v) { PutLe(out, v); }
inline void PutU32(std::string* out, uint32_t v) { PutLe(out, v); }
inline void PutU64(std::string* out, uint64_t v) { PutLe(out, v); }
inline void PutI64(std::string* out, int64_t v) {
  PutLe(out, static_cast<uint64_t>(v));
}

/// Bounds-unchecked little-endian readers; callers validate sizes before
/// dereferencing.
template <typename T>
inline T GetLe(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  if constexpr (std::endian::native != std::endian::little) {
    T swapped = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      swapped |= static_cast<T>((v >> (8 * i)) & 0xFF)
                 << (8 * (sizeof(T) - 1 - i));
    }
    v = swapped;
  }
  return v;
}

inline uint16_t GetU16(const char* p) { return GetLe<uint16_t>(p); }
inline uint32_t GetU32(const char* p) { return GetLe<uint32_t>(p); }
inline uint64_t GetU64(const char* p) { return GetLe<uint64_t>(p); }
inline int64_t GetI64(const char* p) {
  return static_cast<int64_t>(GetLe<uint64_t>(p));
}

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_BINIO_H_
