#ifndef STREAMWORKS_COMMON_TYPES_H_
#define STREAMWORKS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace streamworks {

/// External vertex identifier supplied by the data source (e.g. an IP
/// address hash or an article id). Mapped to a dense internal id on ingest.
using ExternalVertexId = uint64_t;

/// Dense internal vertex id assigned by DynamicGraph in insertion order.
using VertexId = uint32_t;

/// Globally unique, monotonically increasing edge id assigned on ingest.
/// Edge ids double as arrival sequence numbers.
using EdgeId = uint64_t;

/// Interned label id for vertex and edge type strings.
using LabelId = uint32_t;

/// Event timestamp attached to every streamed edge. Units are defined by the
/// data source (ticks, seconds, ...); the engine only compares differences
/// against the query window.
using Timestamp = int64_t;

/// Vertex id inside a *query* graph. Query graphs are small by construction.
using QueryVertexId = uint8_t;

/// Edge id inside a *query* graph.
using QueryEdgeId = uint8_t;

inline constexpr VertexId kInvalidVertexId =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdgeId = std::numeric_limits<EdgeId>::max();
inline constexpr LabelId kInvalidLabelId =
    std::numeric_limits<LabelId>::max();
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Upper bound on query graph size (vertices and edges each). Query edge and
/// vertex sets are represented as 64-bit masks throughout the engine.
inline constexpr int kMaxQuerySize = 64;

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_TYPES_H_
