#ifndef STREAMWORKS_COMMON_STR_UTIL_H_
#define STREAMWORKS_COMMON_STR_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace streamworks {

/// Splits `text` on `sep`, trimming nothing. Empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}); an empty input yields a single empty field.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a signed 64-bit integer; returns false on any non-numeric input,
/// overflow, or trailing garbage.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses an unsigned 64-bit integer (no sign allowed).
bool ParseUint64(std::string_view text, uint64_t* out);

/// Parses a double via strtod semantics; rejects trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Variadic ostream-based concatenation: StrCat("x=", 3, "!") == "x=3!".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Renders `value` with `precision` significant decimal digits after the
/// point (fixed notation). Used by the bench table printers.
std::string FormatDouble(double value, int precision);

/// Renders a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t value);

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_STR_UTIL_H_
