#ifndef STREAMWORKS_COMMON_INTERNER_H_
#define STREAMWORKS_COMMON_INTERNER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "streamworks/common/types.h"

namespace streamworks {

/// Bidirectional mapping between label strings ("Host", "connectsTo", ...)
/// and dense LabelIds. One Interner is shared by a data graph and every query
/// registered against it so that label comparison is an integer compare.
///
/// Ids are assigned in first-seen order starting at 0 and are never recycled.
/// Not thread-safe; the engine is single-threaded per stream by design.
class Interner {
 public:
  Interner() = default;

  /// Returns the id for `name`, interning it on first sight.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidLabelId if it was never interned.
  LabelId Find(std::string_view name) const;

  /// Returns the string for `id`. `id` must be a valid interned id.
  const std::string& Name(LabelId id) const;

  /// True if `id` was produced by this interner.
  bool Contains(LabelId id) const { return id < names_.size(); }

  size_t size() const { return names_.size(); }

 private:
  /// Transparent hashing lets Intern/Find look a string_view up without
  /// materializing a std::string — the text FEED hot path interns three
  /// labels per edge and must not allocate for already-known ones.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, LabelId, StringHash, std::equal_to<>>
      ids_;
  std::vector<std::string> names_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_INTERNER_H_
