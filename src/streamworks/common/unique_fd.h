#ifndef STREAMWORKS_COMMON_UNIQUE_FD_H_
#define STREAMWORKS_COMMON_UNIQUE_FD_H_

#include <unistd.h>

namespace streamworks {

/// Owning file descriptor: closes on destruction, move-only. The thin
/// RAII base every fd-holding handle builds on — net-layer sockets,
/// listeners and wake pipes, and the durability layer's WAL/snapshot
/// files (which is why it lives in common/, not net/).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_UNIQUE_FD_H_
