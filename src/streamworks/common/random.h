#ifndef STREAMWORKS_COMMON_RANDOM_H_
#define STREAMWORKS_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "streamworks/common/logging.h"

namespace streamworks {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library (generators, property tests,
/// benchmark workloads) draws from an explicitly seeded Rng so that runs are
/// reproducible bit-for-bit across machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Geometric-ish positive integer: 1 + floor(Exp(mean-1)). Used for burst
  /// sizes in the stream generators.
  int64_t NextBurstSize(double mean);

 private:
  uint64_t state_[4];
};

/// Zipf-distributed sampler over ranks {0, 1, ..., n-1} with exponent s
/// (rank 0 most popular). Precomputes the CDF once; sampling is a binary
/// search. Matches the skewed entity popularity of news/social streams.
class ZipfSampler {
 public:
  /// Builds a sampler over `n` ranks with exponent `s >= 0`. `s == 0`
  /// degenerates to uniform.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_RANDOM_H_
