#ifndef STREAMWORKS_COMMON_BITSET64_H_
#define STREAMWORKS_COMMON_BITSET64_H_

#include <bit>
#include <cstdint>

#include "streamworks/common/logging.h"

namespace streamworks {

/// Set of small integers in [0, 64), used for query-edge and query-vertex
/// sets throughout the SJ-Tree machinery (kMaxQuerySize == 64). Plain value
/// type; all operations are O(1) bit arithmetic.
class Bitset64 {
 public:
  constexpr Bitset64() : bits_(0) {}
  constexpr explicit Bitset64(uint64_t bits) : bits_(bits) {}

  /// The set {i}.
  static constexpr Bitset64 Single(int i) { return Bitset64(1ull << i); }

  /// The set {0, 1, ..., n-1}. n may be 0..64.
  static constexpr Bitset64 FirstN(int n) {
    return Bitset64(n >= 64 ? ~0ull : (1ull << n) - 1);
  }

  void Add(int i) {
    SW_DCHECK(i >= 0 && i < 64);
    bits_ |= (1ull << i);
  }
  void Remove(int i) {
    SW_DCHECK(i >= 0 && i < 64);
    bits_ &= ~(1ull << i);
  }
  bool Contains(int i) const {
    SW_DCHECK(i >= 0 && i < 64);
    return (bits_ >> i) & 1;
  }

  bool Empty() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }
  uint64_t bits() const { return bits_; }

  /// Smallest element; the set must be non-empty.
  int First() const {
    SW_DCHECK(bits_ != 0);
    return std::countr_zero(bits_);
  }

  bool IsSubsetOf(Bitset64 other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  bool Intersects(Bitset64 other) const { return (bits_ & other.bits_) != 0; }

  friend constexpr Bitset64 operator|(Bitset64 a, Bitset64 b) {
    return Bitset64(a.bits_ | b.bits_);
  }
  friend constexpr Bitset64 operator&(Bitset64 a, Bitset64 b) {
    return Bitset64(a.bits_ & b.bits_);
  }
  friend constexpr Bitset64 operator-(Bitset64 a, Bitset64 b) {
    return Bitset64(a.bits_ & ~b.bits_);
  }
  friend constexpr bool operator==(Bitset64 a, Bitset64 b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Bitset64 a, Bitset64 b) {
    return a.bits_ != b.bits_;
  }

  /// Iterates set elements in increasing order:
  ///   for (int i : mask) { ... }
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_BITSET64_H_
