#include "streamworks/common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <limits>

namespace streamworks {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int until_sep = static_cast<int>(digits.size() % 3);
  if (until_sep == 0) until_sep = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (until_sep == 0) {
      out.push_back(',');
      until_sep = 3;
    }
    out.push_back(digits[i]);
    --until_sep;
  }
  return out;
}

}  // namespace streamworks
