#include "streamworks/common/interner.h"

#include "streamworks/common/logging.h"

namespace streamworks {

LabelId Interner::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId Interner::Find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidLabelId : it->second;
}

const std::string& Interner::Name(LabelId id) const {
  SW_CHECK_LT(id, names_.size()) << "unknown label id";
  return names_[id];
}

}  // namespace streamworks
