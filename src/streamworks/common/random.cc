#include "streamworks/common/random.h"

#include <algorithm>

namespace streamworks {
namespace {

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64Next(sm);
  }
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed cannot
  // produce four zero words, but keep the guarantee explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SW_DCHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SW_DCHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(Next());  // Full 64-bit range.
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; one value per call is fine at our call rates.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

int64_t Rng::NextBurstSize(double mean) {
  if (mean <= 1.0) {
    return 1;
  }
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return 1 + static_cast<int64_t>(-(mean - 1.0) * std::log(u));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  SW_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;  // Guard against accumulated floating point error.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace streamworks
