#include "streamworks/common/logging.h"

#include <atomic>
#include <cstdio>

namespace streamworks {
namespace internal_logging {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogSeverity GetMinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load());
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity));
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line,
                       bool fatal)
    : severity_(severity), file_(file), line_(line), fatal_(fatal) {}

LogMessage::~LogMessage() {
  if (fatal_ || severity_ >= GetMinLogSeverity()) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace streamworks
