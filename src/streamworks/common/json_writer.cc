#include "streamworks/common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace streamworks {

void JsonWriter::Separate() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already placed the comma and the ':' follows it
  }
  if (!stack_.empty()) {
    if (stack_.back().has_members) out_ += ',';
    stack_.back().has_members = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  stack_.push_back(Scope{/*is_object=*/true, /*has_members=*/false});
}

void JsonWriter::EndObject() {
  out_ += '}';
  stack_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  stack_.push_back(Scope{/*is_object=*/false, /*has_members=*/false});
}

void JsonWriter::EndArray() {
  out_ += ']';
  stack_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  if (!stack_.empty()) {
    if (stack_.back().has_members) out_ += ',';
    stack_.back().has_members = true;
  }
  out_ += '"';
  AppendEscaped(&out_, key);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  AppendEscaped(&out_, value);
  out_ += '"';
}

void JsonWriter::Uint(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

void JsonWriter::AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", uc);
          *out += buf;
        } else {
          *out += c;  // UTF-8 continuation bytes pass through unharmed
        }
    }
  }
}

}  // namespace streamworks
