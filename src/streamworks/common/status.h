#ifndef STREAMWORKS_COMMON_STATUS_H_
#define STREAMWORKS_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace streamworks {

/// Error category carried by a Status. Mirrors the small subset of canonical
/// codes the library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kIoError,
  kDataLoss,
  kInternal,
  kUnavailable,
};

/// Returns the canonical lower_snake name of a code ("invalid_argument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error type used instead of exceptions (the library is
/// built with Google-style error handling: no C++ exceptions cross the API).
///
/// An OK status carries no message and is cheap to copy. Error statuses
/// carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OkStatus()) for success.
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  /// Durable bytes that cannot be trusted: CRC mismatch, impossible
  /// structure, or a tear outside the tolerated tail position. Unlike
  /// kIoError (the environment failed) this means the *data* is gone.
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  /// Transient inability to reach a peer (connection refused, link read
  /// timeout, reconnect in progress): retrying may succeed, unlike
  /// kIoError, which reports an environment fault on a healthy link.
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns an OK status; reads better than `Status()` at call sites.
inline Status OkStatus() { return Status(); }

}  // namespace streamworks

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SW_RETURN_IF_ERROR(expr)                          \
  do {                                                    \
    ::streamworks::Status sw_status_macro_tmp_ = (expr);  \
    if (!sw_status_macro_tmp_.ok()) {                     \
      return sw_status_macro_tmp_;                        \
    }                                                     \
  } while (false)

#endif  // STREAMWORKS_COMMON_STATUS_H_
