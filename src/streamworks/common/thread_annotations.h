#ifndef STREAMWORKS_COMMON_THREAD_ANNOTATIONS_H_
#define STREAMWORKS_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (no-ops elsewhere). They document which
/// lock guards which state machine-checkably: `SW_GUARDED_BY(mu_)` on a
/// member, `SW_REQUIRES(mu_)` on a function that must be entered with the
/// lock held, `SW_EXCLUDES(mu_)` on one that takes it itself.
///
/// The annotations are documentation-grade here: libstdc++'s std::mutex
/// carries no capability attributes, so clang's `-Wthread-safety` analysis
/// cannot follow std::lock_guard acquisitions through it and the build
/// does not enable the warning. What the annotations buy today is a
/// single greppable vocabulary for the locking contract on the seams the
/// multi-loop frontend sharpened (the QueryService control plane, the
/// per-connection IO state) — and a free upgrade path to checked locking
/// if the lock types ever grow capability attributes.

#if defined(__clang__) && defined(__has_attribute)
#define SW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SW_THREAD_ANNOTATION_(x)
#endif

#if defined(__clang__)
#define SW_GUARDED_BY(x) SW_THREAD_ANNOTATION_(guarded_by(x))
#define SW_PT_GUARDED_BY(x) SW_THREAD_ANNOTATION_(pt_guarded_by(x))
#define SW_REQUIRES(...) \
  SW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SW_EXCLUDES(...) SW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define SW_ACQUIRE(...) SW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SW_RELEASE(...) SW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#else
#define SW_GUARDED_BY(x)
#define SW_PT_GUARDED_BY(x)
#define SW_REQUIRES(...)
#define SW_EXCLUDES(...)
#define SW_ACQUIRE(...)
#define SW_RELEASE(...)
#endif

#endif  // STREAMWORKS_COMMON_THREAD_ANNOTATIONS_H_
