#ifndef STREAMWORKS_COMMON_JSON_WRITER_H_
#define STREAMWORKS_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace streamworks {

/// Minimal streaming JSON writer for the observability endpoints: builds
/// one compact document into a string, inserting commas and escaping
/// strings so callers never hand-assemble syntax. Correctness choices that
/// matter for scrapers:
///
///   * uint64 values are rendered as bare decimal integers, losslessly —
///     a 20-digit counter never goes through a double;
///   * control characters escape as \u00XX (plus the usual two-character
///     escapes), '"' and '\\' are escaped, and everything >= 0x20 —
///     including multi-byte UTF-8 sequences — passes through untouched;
///   * non-finite doubles render as null (JSON has no NaN/Inf).
///
/// Usage is push-style; nesting is tracked so commas appear exactly where
/// needed. Misuse (Key outside an object, value without a pending key) is
/// a programming error and undefined here — the writers live next to the
/// renderers that use them, all covered by tests.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; must be followed by exactly one value (or
  /// container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Appends `s` JSON-escaped (no surrounding quotes) to *out.
  static void AppendEscaped(std::string* out, std::string_view s);

 private:
  /// Emits the separating comma if the current container already holds a
  /// value; called before every value/key at container scope.
  void Separate();

  struct Scope {
    bool is_object = false;
    bool has_members = false;
  };
  std::vector<Scope> stack_;
  bool key_pending_ = false;
  std::string out_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_JSON_WRITER_H_
