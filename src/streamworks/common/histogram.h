#ifndef STREAMWORKS_COMMON_HISTOGRAM_H_
#define STREAMWORKS_COMMON_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>

namespace streamworks {

/// Fixed-footprint histogram with power-of-two buckets: bucket b holds
/// samples in [2^(b-1), 2^b), bucket 0 holds exactly 0. Record() and
/// Merge() are O(1)/O(kNumBuckets) with no allocation, which is what lets
/// per-queue and per-pipeline-stage instances stay always-on along the hot
/// path. Values are unit-agnostic (delivery lag and stage timings both
/// record microseconds by convention; the `streamworks_*_us` metric names
/// carry the unit).
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;  ///< Covers up to ~2^39 (~6 days in us).

  void Record(uint64_t value) {
    int bucket = value == 0 ? 0 : std::bit_width(value);
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
    ++counts_[bucket];
    ++total_count_;
    sum_ += value;
  }

  void Merge(const Histogram& other) {
    for (int b = 0; b < kNumBuckets; ++b) counts_[b] += other.counts_[b];
    total_count_ += other.total_count_;
    sum_ += other.sum_;
  }

  uint64_t total_count() const { return total_count_; }
  /// Sum of every recorded value (the Prometheus histogram `_sum` series).
  uint64_t sum() const { return sum_; }
  uint64_t bucket_count(int bucket) const { return counts_[bucket]; }

  /// Smallest value bucket `b` can hold (0 for bucket 0).
  static constexpr uint64_t BucketLowerBound(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  /// Largest value bucket `b` can hold (inclusive; 0 for bucket 0).
  static constexpr uint64_t BucketUpperBound(int b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

  /// Rebuilds a histogram from raw bucket counts + a value sum (how an
  /// AtomicHistogram materializes a point-in-time copy for rendering).
  static Histogram FromBuckets(const std::array<uint64_t, kNumBuckets>& counts,
                               uint64_t sum) {
    Histogram h;
    h.counts_ = counts;
    h.sum_ = sum;
    for (uint64_t c : counts) h.total_count_ += c;
    return h;
  }

  /// Approximate value at quantile `q` in [0, 1], with linear interpolation
  /// inside the bucket holding the q-th sample (the bare bucket upper bound
  /// overestimates by up to 2x at high buckets). Returns 0 when empty.
  /// Monotonic in q: within a bucket the interpolation position is
  /// nondecreasing in rank, and bucket b's largest value precedes bucket
  /// b+1's smallest.
  uint64_t Quantile(double q) const {
    if (total_count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the q-th sample, 1-based; the +1 keeps Quantile(1.0) on the
    // last sample instead of past it.
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(total_count_ - 1)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (seen + counts_[b] >= rank) {
        const uint64_t lo = BucketLowerBound(b);
        const uint64_t hi = BucketUpperBound(b);
        const uint64_t in_bucket = rank - seen;  // 1..counts_[b]
        if (counts_[b] == 1 || hi <= lo) return lo;
        // Samples assumed evenly spread across [lo, hi]: the k-th of n
        // sits at lo + (hi-lo) * (k-1)/(n-1).
        return lo + static_cast<uint64_t>(
                        static_cast<double>(hi - lo) *
                        static_cast<double>(in_bucket - 1) /
                        static_cast<double>(counts_[b] - 1));
      }
      seen += counts_[b];
    }
    return BucketUpperBound(kNumBuckets - 1);
  }

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t total_count_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_HISTOGRAM_H_
