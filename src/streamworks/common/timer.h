#ifndef STREAMWORKS_COMMON_TIMER_H_
#define STREAMWORKS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace streamworks {

/// Monotonic wall-clock stopwatch used by benches and engine metrics.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in integer microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_COMMON_TIMER_H_
