#ifndef STREAMWORKS_COMMON_LOGGING_H_
#define STREAMWORKS_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace streamworks {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Minimum severity that is actually written to stderr. Defaults to kInfo.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

/// Stream-style log message collector. Emits on destruction; if
/// `fatal` is set, aborts the process after emitting (used by SW_CHECK).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line,
             bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lower-precedence-than-<< sink that turns a stream chain into void, so
/// SW_CHECK can live in a ternary expression (the glog idiom).
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace internal_logging
}  // namespace streamworks

#define SW_LOG(severity)                                                   \
  ::streamworks::internal_logging::LogMessage(                             \
      ::streamworks::LogSeverity::k##severity, __FILE__, __LINE__)         \
      .stream()

/// Aborts the process with a diagnostic if `condition` is false. Active in
/// all build modes; use for invariants whose violation is unrecoverable.
#define SW_CHECK(condition)                                                 \
  (condition)                                                               \
      ? (void)0                                                             \
      : ::streamworks::internal_logging::Voidify() &                        \
            ::streamworks::internal_logging::LogMessage(                    \
                ::streamworks::LogSeverity::kError, __FILE__, __LINE__,    \
                true)                                                       \
                .stream()                                                   \
            << "Check failed: " #condition " "

#define SW_CHECK_OP(op, a, b)                                  \
  SW_CHECK((a)op(b)) << "(" << (a) << " vs. " << (b) << ") "

#define SW_CHECK_EQ(a, b) SW_CHECK_OP(==, a, b)
#define SW_CHECK_NE(a, b) SW_CHECK_OP(!=, a, b)
#define SW_CHECK_LT(a, b) SW_CHECK_OP(<, a, b)
#define SW_CHECK_LE(a, b) SW_CHECK_OP(<=, a, b)
#define SW_CHECK_GT(a, b) SW_CHECK_OP(>, a, b)
#define SW_CHECK_GE(a, b) SW_CHECK_OP(>=, a, b)

/// Aborts if a Status-returning expression is not OK. For call sites where
/// failure indicates a programming error rather than bad input.
#define SW_CHECK_OK(expr)                                   \
  do {                                                      \
    ::streamworks::Status sw_check_ok_status_ = (expr);     \
    SW_CHECK(sw_check_ok_status_.ok())                      \
        << "status = " << sw_check_ok_status_.ToString();   \
  } while (false)

#ifdef NDEBUG
#define SW_DCHECK(condition) \
  while (false) SW_CHECK(condition)
#else
#define SW_DCHECK(condition) SW_CHECK(condition)
#endif

#define SW_DCHECK_EQ(a, b) SW_DCHECK((a) == (b))
#define SW_DCHECK_NE(a, b) SW_DCHECK((a) != (b))
#define SW_DCHECK_LT(a, b) SW_DCHECK((a) < (b))
#define SW_DCHECK_LE(a, b) SW_DCHECK((a) <= (b))
#define SW_DCHECK_GT(a, b) SW_DCHECK((a) > (b))
#define SW_DCHECK_GE(a, b) SW_DCHECK((a) >= (b))

#endif  // STREAMWORKS_COMMON_LOGGING_H_
