#ifndef STREAMWORKS_COMMON_STATUSOR_H_
#define STREAMWORKS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "streamworks/common/logging.h"
#include "streamworks/common/status.h"

namespace streamworks {

/// Union of a Status and a value of type T: either an error status, or an OK
/// status plus a value. Accessing the value of an errored StatusOr aborts
/// (checked precondition), matching the no-exceptions error model.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SW_CHECK(!status_.ok()) << "StatusOr constructed from an OK status "
                               "without a value";
  }

  /// Constructs an OK StatusOr holding `value`.
  StatusOr(T value)  // NOLINT
      : status_(OkStatus()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if !ok().
  const T& value() const& {
    SW_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SW_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SW_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace streamworks

/// Evaluates a StatusOr expression; on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define SW_ASSIGN_OR_RETURN(lhs, expr)                \
  SW_ASSIGN_OR_RETURN_IMPL_(                          \
      SW_STATUS_MACRO_CONCAT_(sw_statusor_, __LINE__), lhs, expr)

#define SW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

#define SW_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define SW_STATUS_MACRO_CONCAT_(x, y) SW_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // STREAMWORKS_COMMON_STATUSOR_H_
