#include "streamworks/baseline/recompute.h"

#include "streamworks/match/subgraph_iso.h"

namespace streamworks {

RecomputeMatcher::RecomputeMatcher(const QueryGraph* query, Timestamp window,
                                   const Interner* interner)
    : query_(query), window_(window), graph_(interner) {
  if (window != kMaxTimestamp) graph_.set_retention(window);
}

StatusOr<std::vector<Match>> RecomputeMatcher::ProcessBatch(
    const EdgeBatch& batch) {
  for (const StreamEdge& e : batch) {
    SW_RETURN_IF_ERROR(graph_.AddEdge(e).status());
  }
  // Full re-search over the window. Matches made of pre-existing edges are
  // re-enumerated and filtered by the seen-set; their edge ids are stable,
  // so the signature identifies them across batches.
  IsoOptions options;
  options.window = window_;
  std::vector<Match> fresh;
  last_enumerated_ = 0;
  ForEachMatch(graph_, *query_, options, [&](const Match& m) {
    ++last_enumerated_;
    if (seen_.insert(m.MappingSignature()).second) {
      fresh.push_back(m);
    }
    return true;
  });
  total_matches_ += fresh.size();
  return fresh;
}

}  // namespace streamworks
