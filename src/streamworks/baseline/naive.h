#ifndef STREAMWORKS_BASELINE_NAIVE_H_
#define STREAMWORKS_BASELINE_NAIVE_H_

#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/match.h"
#include "streamworks/stream/batching.h"

namespace streamworks {

/// The paper's §3.1 "simplistic approach": for every arriving edge, check
/// whether it matches some query edge and, if so, explore every combination
/// it can participate in — i.e. an anchored backtracking search over the
/// *whole* query at once, with no decomposition and no reuse of partial
/// matches across edges.
///
/// It is incremental (per-edge) and exact, so it serves as the second
/// independent oracle; but because it re-derives every partial match from
/// scratch inside each anchored search, dense neighbourhoods make it blow
/// up combinatorially — the motivation for the SJ-Tree (§3.1).
class NaiveIncrementalMatcher {
 public:
  NaiveIncrementalMatcher(const QueryGraph* query, Timestamp window,
                          const Interner* interner);

  /// Ingests one edge and returns the matches completed by it.
  StatusOr<std::vector<Match>> ProcessEdge(const StreamEdge& edge);

  /// Batch convenience: per-edge processing in order.
  StatusOr<std::vector<Match>> ProcessBatch(const EdgeBatch& batch);

  const DynamicGraph& graph() const { return graph_; }
  uint64_t total_matches() const { return total_matches_; }

 private:
  const QueryGraph* query_;
  Timestamp window_;
  DynamicGraph graph_;
  /// orders_[qe]: whole-query expansion order anchored at query edge qe.
  std::vector<std::vector<QueryEdgeId>> orders_;
  uint64_t total_matches_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_BASELINE_NAIVE_H_
