#include "streamworks/baseline/naive.h"

#include "streamworks/match/local_search.h"

namespace streamworks {

NaiveIncrementalMatcher::NaiveIncrementalMatcher(const QueryGraph* query,
                                                 Timestamp window,
                                                 const Interner* interner)
    : query_(query), window_(window), graph_(interner) {
  if (window != kMaxTimestamp) graph_.set_retention(window);
  orders_.reserve(query_->num_edges());
  for (int qe = 0; qe < query_->num_edges(); ++qe) {
    orders_.push_back(ConnectedEdgeOrder(*query_, query_->AllEdges(),
                                         static_cast<QueryEdgeId>(qe)));
  }
}

StatusOr<std::vector<Match>> NaiveIncrementalMatcher::ProcessEdge(
    const StreamEdge& edge) {
  SW_ASSIGN_OR_RETURN(const EdgeId id, graph_.AddEdge(edge));
  std::vector<Match> out;
  const EdgeRecord& record = graph_.edge_record(id);
  for (int qe = 0; qe < query_->num_edges(); ++qe) {
    if (!EdgeLabelsMatch(graph_, *query_, static_cast<QueryEdgeId>(qe),
                         record)) {
      continue;
    }
    FindAnchoredMatches(graph_, *query_, orders_[qe], id, window_,
                        [&](const Match& m) {
                          out.push_back(m);
                          return true;
                        });
  }
  total_matches_ += out.size();
  return out;
}

StatusOr<std::vector<Match>> NaiveIncrementalMatcher::ProcessBatch(
    const EdgeBatch& batch) {
  std::vector<Match> out;
  for (const StreamEdge& e : batch) {
    SW_ASSIGN_OR_RETURN(std::vector<Match> fresh, ProcessEdge(e));
    out.insert(out.end(), fresh.begin(), fresh.end());
  }
  return out;
}

}  // namespace streamworks
