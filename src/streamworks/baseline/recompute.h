#ifndef STREAMWORKS_BASELINE_RECOMPUTE_H_
#define STREAMWORKS_BASELINE_RECOMPUTE_H_

#include <unordered_set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"
#include "streamworks/stream/batching.h"

namespace streamworks {

/// The *repeated search* strategy the paper contrasts with (§2.2, the Fan
/// et al. [7] approach to subgraph isomorphism): after every batch, re-run
/// the full batch matcher over the windowed graph and report the matches
/// that were not seen before.
///
/// Used as (a) an independent correctness oracle in the equivalence tests
/// and (b) the baseline of the B1 comparison bench. Its per-batch cost is
/// proportional to the whole window, not to the batch — the gap the
/// incremental SJ-Tree is designed to eliminate.
///
/// Completeness caveat (inherent to periodic re-evaluation, and part of
/// why continuous queries exist): the matcher only observes the graph at
/// batch boundaries. If a batch spans multiple timestamp ticks, a match
/// can both complete and fall out of the retention window *inside* the
/// batch, in which case it is never enumerated. With one batch per tick
/// (BatchByTick) the matcher is exact and serves as an oracle; with larger
/// batches it trades completeness for amortisation — the B1 bench
/// quantifies exactly that loss.
class RecomputeMatcher {
 public:
  /// The matcher owns a private windowed graph (retention == window).
  RecomputeMatcher(const QueryGraph* query, Timestamp window,
                   const Interner* interner);

  /// Ingests the batch, re-runs the search, and returns the matches that
  /// newly appeared (each exactly once across the stream's lifetime).
  StatusOr<std::vector<Match>> ProcessBatch(const EdgeBatch& batch);

  const DynamicGraph& graph() const { return graph_; }
  uint64_t total_matches() const { return total_matches_; }
  /// Matches enumerated by the last re-search (including re-discoveries) —
  /// the work the strategy wastes.
  uint64_t last_enumerated() const { return last_enumerated_; }

 private:
  const QueryGraph* query_;
  Timestamp window_;
  DynamicGraph graph_;
  std::unordered_set<uint64_t> seen_;
  uint64_t total_matches_ = 0;
  uint64_t last_enumerated_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_BASELINE_RECOMPUTE_H_
