#include "streamworks/obs/http_endpoint.h"

#include <cctype>
#include <string>
#include <string_view>
#include <utility>

#include "streamworks/obs/json_render.h"

namespace streamworks {

namespace {

constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr std::string_view kJsonContentType = "application/json";

std::string_view StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Finds the end of the header block: the first blank line, accepting
/// CRLF CRLF, LF LF, or mixed endings. Returns npos if not yet complete.
size_t FindHeadEnd(std::string_view buf) {
  for (size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != '\n') continue;
    // Line ending at i; blank line if the next line ends immediately.
    size_t j = i + 1;
    if (j < buf.size() && buf[j] == '\r') ++j;
    if (j < buf.size() && buf[j] == '\n') return j + 1;
  }
  return std::string_view::npos;
}

HttpResponse NotWired(std::string_view what) {
  HttpResponse r;
  r.status = 503;
  r.body = std::string(what) + " not wired on this server\n";
  return r;
}

}  // namespace

HttpParseResult ParseHttpRequest(std::string_view buf, HttpRequest* out,
                                 size_t* consumed) {
  const size_t head_end = FindHeadEnd(buf);
  if (head_end == std::string_view::npos) return HttpParseResult::kNeedMore;

  // Request line: METHOD SP TARGET SP HTTP/x.y
  std::string_view line = buf.substr(0, buf.find('\n'));
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParseResult::kBad;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return HttpParseResult::kBad;
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParseResult::kBad;
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return HttpParseResult::kBad;

  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(target);
  *consumed = head_end;
  return HttpParseResult::kComplete;
}

std::string EncodeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpHandler::HttpHandler(Providers providers)
    : providers_(std::move(providers)),
      start_us_(PipelineMetrics::NowMicros()) {}

HttpResponse HttpHandler::Handle(const HttpRequest& request) const {
  if (request.method != "GET") {
    HttpResponse r;
    r.status = 405;
    r.body = "only GET is supported\n";
    return r;
  }
  // Route on the path alone; a scrape config may append query parameters.
  std::string_view path = request.target;
  if (const size_t q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);
  }

  HttpResponse r;
  if (path == "/metrics") {
    if (providers_.registry == nullptr) return NotWired("metric registry");
    r.content_type = std::string(kPrometheusContentType);
    r.body = providers_.registry->RenderPrometheus();
    return r;
  }
  if (path == "/stats.json") {
    if (!providers_.stats) return NotWired("stats provider");
    r.content_type = std::string(kJsonContentType);
    r.body = RenderStatsJson(providers_.stats());
    return r;
  }
  if (path == "/shards.json") {
    if (!providers_.stats) return NotWired("stats provider");
    r.content_type = std::string(kJsonContentType);
    r.body = RenderShardsJson(providers_.stats());
    return r;
  }
  if (path == "/queries.json") {
    if (!providers_.queries) return NotWired("query provider");
    r.content_type = std::string(kJsonContentType);
    r.body = RenderQueriesJson(providers_.queries());
    return r;
  }
  if (path == "/trace.json") {
    if (providers_.pipeline == nullptr) return NotWired("pipeline metrics");
    r.content_type = std::string(kJsonContentType);
    r.body = RenderTraceJson(*providers_.pipeline, PipelineMetrics::NowMicros());
    return r;
  }
  if (path == "/cluster.json") {
    if (!providers_.cluster) return NotWired("cluster provider");
    r.content_type = std::string(kJsonContentType);
    r.body = providers_.cluster();
    return r;
  }
  if (path == "/epochs.json") {
    if (!providers_.epochs) return NotWired("epoch trace provider");
    r.content_type = std::string(kJsonContentType);
    r.body = providers_.epochs();
    return r;
  }
  if (path == "/healthz") {
    r.content_type = std::string(kJsonContentType);
    if (providers_.health) {
      r.body = providers_.health();
      return r;
    }
    if (!providers_.stats) return NotWired("stats provider");
    r.body = RenderHealthJson(providers_.stats(),
                              PipelineMetrics::NowMicros() - start_us_);
    return r;
  }
  r.status = 404;
  r.body = "unknown path; try /metrics /stats.json /shards.json "
           "/queries.json /trace.json /cluster.json /epochs.json /healthz\n";
  return r;
}

}  // namespace streamworks
