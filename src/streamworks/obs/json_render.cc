#include "streamworks/obs/json_render.h"

#include <string>
#include <utility>
#include <vector>

#include "streamworks/common/json_writer.h"

namespace streamworks {

namespace {

void WriteShard(JsonWriter* w, const ShardLoadSnapshot& shard) {
  w->BeginObject();
  w->Key("shard");
  w->Int(shard.shard);
  w->Key("sharding");
  w->String(shard.sharding);
  w->Key("retained_edges");
  w->Uint(shard.retained_edges);
  w->Key("retained_vertices");
  w->Uint(shard.retained_vertices);
  w->Key("evicted_edges");
  w->Uint(shard.evicted_edges);
  w->Key("edges_processed");
  w->Uint(shard.edges_processed);
  w->Key("completions");
  w->Uint(shard.completions);
  w->Key("live_partial_matches");
  w->Uint(shard.live_partial_matches);
  w->Key("matches_forwarded");
  w->Uint(shard.matches_forwarded);
  w->Key("matches_received");
  w->Uint(shard.matches_received);
  w->EndObject();
}

void WriteShardArray(JsonWriter* w, const ServiceStatsSnapshot& snap) {
  w->BeginArray();
  for (const ShardLoadSnapshot& shard : snap.shards) WriteShard(w, shard);
  w->EndArray();
}

void WritePersist(JsonWriter* w, const PersistCounters& p) {
  w->BeginObject();
  w->Key("enabled");
  w->Bool(p.enabled);
  w->Key("wal_seq");
  w->Uint(p.wal_seq);
  w->Key("wal_records");
  w->Uint(p.wal_records);
  w->Key("wal_edges");
  w->Uint(p.wal_edges);
  w->Key("wal_bytes");
  w->Uint(p.wal_bytes);
  w->Key("wal_segments");
  w->Uint(p.wal_segments);
  w->Key("wal_fsyncs");
  w->Uint(p.wal_fsyncs);
  w->Key("snapshots_written");
  w->Uint(p.snapshots_written);
  w->Key("snapshot_failures");
  w->Uint(p.snapshot_failures);
  w->Key("last_snapshot_wal_seq");
  w->Uint(p.last_snapshot_wal_seq);
  w->Key("recovered_window_edges");
  w->Uint(p.recovered_window_edges);
  w->Key("recovered_sessions");
  w->Uint(p.recovered_sessions);
  w->Key("recovered_subscriptions");
  w->Uint(p.recovered_subscriptions);
  w->Key("replayed_edges");
  w->Uint(p.replayed_edges);
  w->EndObject();
}

void WriteFrontend(JsonWriter* w, const FrontendStatsSnapshot& f) {
  w->BeginObject();
  w->Key("enabled");
  w->Bool(f.enabled);
  w->Key("connections_accepted");
  w->Uint(f.connections_accepted);
  w->Key("connections_refused");
  w->Uint(f.connections_refused);
  w->Key("connections_closed");
  w->Uint(f.connections_closed);
  w->Key("lines_executed");
  w->Uint(f.lines_executed);
  w->Key("frames_executed");
  w->Uint(f.frames_executed);
  w->Key("batch_edges_in");
  w->Uint(f.batch_edges_in);
  w->Key("protocol_errors");
  w->Uint(f.protocol_errors);
  w->Key("events_pushed");
  w->Uint(f.events_pushed);
  w->Key("pump_flushes");
  w->Uint(f.pump_flushes);
  w->Key("http_requests");
  w->Uint(f.http_requests);
  w->Key("bytes_in");
  w->Uint(f.bytes_in);
  w->Key("bytes_out");
  w->Uint(f.bytes_out);
  w->Key("subscriptions_reclaimed");
  w->Uint(f.subscriptions_reclaimed);
  w->Key("io_loops");
  w->BeginArray();
  for (const IoLoopStatsSnapshot& l : f.io_loops) {
    w->BeginObject();
    w->Key("loop");
    w->Int(l.loop);
    w->Key("connections");
    w->Uint(l.connections);
    w->Key("pump_flushes");
    w->Uint(l.pump_flushes);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string RenderStatsJson(const ServiceStatsSnapshot& snap) {
  JsonWriter w;
  w.BeginObject();

  w.Key("service");
  w.BeginObject();
  w.Key("sessions_opened");
  w.Uint(snap.sessions_opened);
  w.Key("submissions");
  w.Uint(snap.submissions);
  w.Key("admitted");
  w.Uint(snap.admitted);
  w.Key("rejected");
  w.BeginObject();
  w.Key("session_quota");
  w.Uint(snap.rejected_session_quota);
  w.Key("partial_budget");
  w.Uint(snap.rejected_partial_budget);
  w.Key("other");
  w.Uint(snap.rejected_other);
  w.EndObject();
  w.Key("pauses");
  w.Uint(snap.pauses);
  w.Key("resumes");
  w.Uint(snap.resumes);
  w.Key("detaches");
  w.Uint(snap.detaches);
  w.Key("reclaimed");
  w.Uint(snap.reclaimed);
  w.Key("reclaimed_aged");
  w.Uint(snap.reclaimed_aged);
  w.Key("edges_fed");
  w.Uint(snap.edges_fed);
  w.Key("matches");
  w.BeginObject();
  w.Key("enqueued");
  w.Uint(snap.matches_enqueued);
  w.Key("delivered");
  w.Uint(snap.matches_delivered);
  w.Key("dropped");
  w.Uint(snap.matches_dropped);
  w.Key("suppressed");
  w.Uint(snap.matches_suppressed);
  w.EndObject();
  w.Key("delivery_lag_us");
  w.BeginObject();
  w.Key("p50");
  w.Uint(snap.delivery_lag_p50_us);
  w.Key("p99");
  w.Uint(snap.delivery_lag_p99_us);
  w.Key("count");
  w.Uint(snap.delivery_lag.total_count());
  w.Key("sum");
  w.Uint(snap.delivery_lag.sum());
  w.EndObject();
  w.EndObject();

  w.Key("sessions");
  w.BeginArray();
  for (const SessionStatsSnapshot& session : snap.sessions) {
    w.BeginObject();
    w.Key("session_id");
    w.Int(session.session_id);
    w.Key("name");
    w.String(session.name);
    w.Key("open");
    w.Bool(session.open);
    w.Key("submissions");
    w.Uint(session.submissions);
    w.Key("admitted");
    w.Uint(session.admitted);
    w.Key("rejected");
    w.Uint(session.rejected);
    w.Key("detaches");
    w.Uint(session.detaches);
    w.Key("live_queries");
    w.Int(session.live_queries);
    w.Key("subscriptions");
    w.BeginArray();
    for (const SubscriptionStatsSnapshot& sub : session.subscriptions) {
      w.BeginObject();
      w.Key("subscription_id");
      w.Int(sub.subscription_id);
      w.Key("query_name");
      w.String(sub.query_name);
      w.Key("state");
      w.String(sub.state);
      w.Key("policy");
      w.String(sub.policy);
      w.Key("window");
      w.Int(sub.window);
      w.Key("enqueued");
      w.Uint(sub.enqueued);
      w.Key("delivered");
      w.Uint(sub.delivered);
      w.Key("dropped");
      w.Uint(sub.dropped);
      w.Key("suppressed_while_paused");
      w.Uint(sub.suppressed_while_paused);
      w.Key("queue_depth");
      w.Uint(sub.queue_depth);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("shards");
  WriteShardArray(&w, snap);
  w.Key("persist");
  WritePersist(&w, snap.persist);
  w.Key("frontend");
  WriteFrontend(&w, snap.frontend);
  w.EndObject();
  return w.TakeString();
}

std::string RenderShardsJson(const ServiceStatsSnapshot& snap) {
  JsonWriter w;
  w.BeginObject();
  w.Key("shards");
  WriteShardArray(&w, snap);
  w.EndObject();
  return w.TakeString();
}

std::string RenderQueriesJson(const std::vector<QueryObsSnapshot>& queries) {
  JsonWriter w;
  w.BeginObject();
  w.Key("queries");
  w.BeginArray();
  for (const QueryObsSnapshot& q : queries) {
    w.BeginObject();
    w.Key("session_id");
    w.Int(q.session_id);
    w.Key("subscription_id");
    w.Int(q.subscription_id);
    w.Key("session_name");
    w.String(q.session_name);
    w.Key("query_name");
    w.String(q.query_name);
    w.Key("tag");
    w.String(q.tag);
    w.Key("state");
    w.String(q.state);
    w.Key("window");
    w.Int(q.info.window);
    w.Key("completions");
    w.Uint(q.info.completions);
    w.Key("live_partial_matches");
    w.Uint(q.info.live_partial_matches);
    w.Key("peak_partial_matches");
    w.Uint(q.info.peak_partial_matches);
    w.Key("nodes");
    w.BeginArray();
    for (const SjNodeRuntime& node : q.info.nodes) {
      w.BeginObject();
      w.Key("node");
      w.Int(node.node);
      w.Key("is_leaf");
      w.Bool(node.is_leaf);
      w.Key("query_edges");
      w.Int(node.query_edges);
      w.Key("matches_inserted");
      w.Uint(node.matches_inserted);
      w.Key("probes");
      w.Uint(node.probes);
      w.Key("join_attempts");
      w.Uint(node.join_attempts);
      w.Key("joins_succeeded");
      w.Uint(node.joins_succeeded);
      w.Key("live_partial_matches");
      w.Uint(node.live_partial_matches);
      // Observed join selectivity — the quantity StreamWorks'
      // selectivity-ordered decomposition optimizes for; null until the
      // node has attempted a join.
      w.Key("join_selectivity");
      if (node.join_attempts > 0) {
        w.Double(static_cast<double>(node.joins_succeeded) /
                 static_cast<double>(node.join_attempts));
      } else {
        w.Null();
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string RenderTraceJson(const PipelineMetrics& pipeline, uint64_t now_us) {
  JsonWriter w;
  w.BeginObject();
  w.Key("slow_threshold_us");
  w.Uint(pipeline.slow_threshold_us());
  w.Key("slow_ops_recorded");
  w.Uint(pipeline.slow_ops_recorded());

  w.Key("stages");
  w.BeginArray();
  for (int s = 0; s < kNumPipelineStages; ++s) {
    const PipelineStage stage = static_cast<PipelineStage>(s);
    const Histogram h = pipeline.stage_histogram(stage).Snapshot();
    w.BeginObject();
    w.Key("stage");
    w.String(PipelineStageName(stage));
    w.Key("count");
    w.Uint(h.total_count());
    w.Key("sum_us");
    w.Uint(h.sum());
    w.Key("p50_us");
    w.Uint(h.Quantile(0.5));
    w.Key("p99_us");
    w.Uint(h.Quantile(0.99));
    w.EndObject();
  }
  w.EndArray();

  w.Key("entries");
  w.BeginArray();
  for (const TraceEntry& e : pipeline.TraceSnapshot()) {
    w.BeginObject();
    w.Key("stage");
    w.String(PipelineStageName(e.stage));
    w.Key("session_id");
    w.Int(e.session_id);
    w.Key("subscription_id");
    w.Int(e.subscription_id);
    w.Key("duration_us");
    w.Uint(e.duration_us);
    w.Key("detail");
    w.Uint(e.detail);
    w.Key("age_us");
    w.Uint(now_us >= e.at_us ? now_us - e.at_us : 0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string RenderHealthJson(const ServiceStatsSnapshot& snap,
                             uint64_t uptime_us) {
  // Liveness is implied by answering at all; the body reports durability
  // freshness so an operator (or probe) can alert on a stalling snapshot
  // cadence or failing snapshot writes without parsing full stats.
  const PersistCounters& p = snap.persist;
  const bool persist_healthy = !p.enabled || p.snapshot_failures == 0;
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String(persist_healthy ? "ok" : "degraded");
  w.Key("uptime_us");
  w.Uint(uptime_us);
  w.Key("edges_fed");
  w.Uint(snap.edges_fed);
  w.Key("persist_enabled");
  w.Bool(p.enabled);
  w.Key("wal_seq");
  w.Uint(p.wal_seq);
  w.Key("last_snapshot_wal_seq");
  w.Uint(p.last_snapshot_wal_seq);
  // Edges logged since the last durable snapshot — the recovery replay
  // bound, i.e. how stale a crash-restart would start out.
  w.Key("snapshot_lag_edges");
  w.Uint(p.wal_seq >= p.last_snapshot_wal_seq
             ? p.wal_seq - p.last_snapshot_wal_seq
             : 0);
  w.Key("snapshot_failures");
  w.Uint(p.snapshot_failures);
  w.EndObject();
  return w.TakeString();
}

std::string FormatTraceText(const PipelineMetrics& pipeline, uint64_t now_us) {
  std::string out;
  for (const TraceEntry& e : pipeline.TraceSnapshot()) {
    out += "slow stage=";
    out += PipelineStageName(e.stage);
    out += " dur_us=" + std::to_string(e.duration_us);
    out += " session=" + std::to_string(e.session_id);
    out += " sub=" + std::to_string(e.subscription_id);
    out += " detail=" + std::to_string(e.detail);
    out +=
        " age_us=" + std::to_string(now_us >= e.at_us ? now_us - e.at_us : 0);
    out += "\n";
  }
  return out;
}

std::string RenderClusterJson(const ClusterObsSnapshot& snap) {
  JsonWriter w;
  w.BeginObject();
  w.Key("healthy");
  w.Bool(snap.healthy);
  w.Key("epochs");
  w.Uint(snap.epochs);
  w.Key("stale_threshold_us");
  w.Uint(snap.stale_threshold_us);
  w.Key("workers");
  w.BeginArray();
  for (const WorkerObsSnapshot& worker : snap.workers) {
    w.BeginObject();
    w.Key("shard");
    w.Int(worker.shard);
    w.Key("endpoint");
    w.String(worker.host + ":" + std::to_string(worker.port));
    w.Key("connected");
    w.Bool(worker.connected);
    w.Key("has_report");
    w.Bool(worker.has_report);
    w.Key("report_age_us");
    w.Uint(worker.report_age_us);
    w.Key("wal_seq");
    w.Uint(worker.wal_seq);
    w.Key("replayed_frames");
    w.Uint(worker.replayed_frames);
    w.Key("exchange_items_sent");
    w.Uint(worker.exchange_items_sent);
    w.Key("completions_sent");
    w.Uint(worker.completions_sent);
    w.Key("sent_state");
    w.Uint(worker.sent_state);
    w.Key("retained_frames");
    w.Uint(worker.retained_frames);
    w.Key("stages");
    w.BeginArray();
    for (const WorkerStageSummary& stage : worker.stages) {
      w.BeginObject();
      w.Key("stage");
      w.String(stage.stage);
      w.Key("count");
      w.Uint(stage.count);
      w.Key("sum_us");
      w.Uint(stage.sum_us);
      w.Key("p50_us");
      w.Uint(stage.p50_us);
      w.Key("p99_us");
      w.Uint(stage.p99_us);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string RenderClusterHealthJson(const ClusterObsSnapshot& snap) {
  size_t connected = 0;
  size_t stale = 0;
  for (const WorkerObsSnapshot& worker : snap.workers) {
    if (worker.connected) ++connected;
    if (!worker.has_report || worker.report_age_us > snap.stale_threshold_us) {
      ++stale;
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String(snap.healthy ? "ok" : "degraded");
  w.Key("role");
  w.String("coordinator");
  w.Key("workers");
  w.Uint(snap.workers.size());
  w.Key("connected");
  w.Uint(connected);
  w.Key("stale_reports");
  w.Uint(stale);
  w.Key("epochs");
  w.Uint(snap.epochs);
  w.EndObject();
  std::string out = w.TakeString();
  out.push_back('\n');
  return out;
}

std::string RenderEpochsJson(const std::vector<EpochTraceEntry>& entries,
                             uint64_t total_epochs, uint64_t now_us) {
  JsonWriter w;
  w.BeginObject();
  w.Key("total_epochs");
  w.Uint(total_epochs);
  w.Key("epochs");
  w.BeginArray();
  for (const EpochTraceEntry& e : entries) {
    w.BeginObject();
    w.Key("epoch");
    w.Uint(e.epoch);
    w.Key("edges");
    w.Uint(e.edges);
    w.Key("relay_rounds");
    w.Uint(e.relay_rounds);
    w.Key("relayed_items");
    w.Uint(e.relayed_items);
    w.Key("batch_us");
    w.Uint(e.batch_us);
    w.Key("apply_us");
    w.Uint(e.apply_us);
    w.Key("relay_us");
    w.Uint(e.relay_us);
    w.Key("barrier_us");
    w.Uint(e.barrier_us);
    w.Key("commit_us");
    w.Uint(e.commit_us);
    w.Key("total_us");
    w.Uint(e.total_us);
    w.Key("age_us");
    w.Uint(now_us >= e.at_us ? now_us - e.at_us : 0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void ContributeServiceMetrics(const ServiceStatsSnapshot& snap,
                              MetricSnapshotBuilder* out) {
  out->EmitCounter("streamworks_edges_fed_total",
                   "Stream edges admitted through the query service.", {},
                   snap.edges_fed);
  out->EmitCounter("streamworks_sessions_opened_total",
                   "Client sessions opened.", {}, snap.sessions_opened);
  out->EmitCounter("streamworks_query_submissions_total",
                   "Query submissions received (admitted + rejected).", {},
                   snap.submissions);
  out->EmitCounter("streamworks_queries_admitted_total",
                   "Query submissions admitted.", {}, snap.admitted);
  out->EmitCounter("streamworks_queries_rejected_total",
                   "Query submissions rejected, by reason.",
                   {{"reason", "session_quota"}}, snap.rejected_session_quota);
  out->EmitCounter("streamworks_queries_rejected_total",
                   "Query submissions rejected, by reason.",
                   {{"reason", "partial_budget"}}, snap.rejected_partial_budget);
  out->EmitCounter("streamworks_queries_rejected_total",
                   "Query submissions rejected, by reason.",
                   {{"reason", "other"}}, snap.rejected_other);
  out->EmitCounter("streamworks_subscription_pauses_total",
                   "Subscription pause operations.", {}, snap.pauses);
  out->EmitCounter("streamworks_subscription_resumes_total",
                   "Subscription resume operations.", {}, snap.resumes);
  out->EmitCounter("streamworks_subscription_detaches_total",
                   "Subscription detach operations.", {}, snap.detaches);
  out->EmitCounter("streamworks_subscriptions_reclaimed_total",
                   "Detached subscriptions compacted away.", {},
                   snap.reclaimed);
  out->EmitCounter("streamworks_subscriptions_reclaimed_aged_total",
                   "Reclaimed subscriptions taken by the age-based sweep.", {},
                   snap.reclaimed_aged);

  out->EmitCounter("streamworks_matches_total",
                   "Complete matches, by delivery event.",
                   {{"event", "enqueued"}}, snap.matches_enqueued);
  out->EmitCounter("streamworks_matches_total",
                   "Complete matches, by delivery event.",
                   {{"event", "delivered"}}, snap.matches_delivered);
  out->EmitCounter("streamworks_matches_total",
                   "Complete matches, by delivery event.",
                   {{"event", "dropped"}}, snap.matches_dropped);
  out->EmitCounter("streamworks_matches_total",
                   "Complete matches, by delivery event.",
                   {{"event", "suppressed"}}, snap.matches_suppressed);
  out->EmitHistogram("streamworks_delivery_lag_us",
                     "Microseconds from match enqueue to consumer pop.", {},
                     snap.delivery_lag);

  uint64_t open_sessions = 0;
  uint64_t live_subscriptions = 0;
  for (const SessionStatsSnapshot& session : snap.sessions) {
    if (session.open) ++open_sessions;
    live_subscriptions += static_cast<uint64_t>(session.live_queries);
  }
  out->EmitGauge("streamworks_sessions_open", "Sessions currently open.", {},
                 static_cast<double>(open_sessions));
  out->EmitGauge("streamworks_subscriptions_live",
                 "Non-detached subscriptions across all sessions.", {},
                 static_cast<double>(live_subscriptions));

  for (const ShardLoadSnapshot& shard : snap.shards) {
    const MetricLabels labels = {{"shard", std::to_string(shard.shard)}};
    out->EmitGauge("streamworks_shard_retained_edges",
                   "Edges currently retained in the shard's window.", labels,
                   static_cast<double>(shard.retained_edges));
    out->EmitGauge("streamworks_shard_retained_vertices",
                   "Vertices currently retained in the shard's window.",
                   labels, static_cast<double>(shard.retained_vertices));
    out->EmitGauge("streamworks_shard_live_partial_matches",
                   "Partial matches alive in the shard's SJ-Trees.", labels,
                   static_cast<double>(shard.live_partial_matches));
    out->EmitCounter("streamworks_shard_evicted_edges_total",
                     "Edges evicted from the shard's window.", labels,
                     shard.evicted_edges);
    out->EmitCounter("streamworks_shard_edges_processed_total",
                     "Edges the shard's engine has processed.", labels,
                     shard.edges_processed);
    out->EmitCounter("streamworks_shard_completions_total",
                     "Complete matches produced by the shard.", labels,
                     shard.completions);
    out->EmitCounter("streamworks_shard_exchange_total",
                     "Cross-shard match-exchange items, by direction.",
                     {{"shard", std::to_string(shard.shard)},
                      {"direction", "forwarded"}},
                     shard.matches_forwarded);
    out->EmitCounter("streamworks_shard_exchange_total",
                     "Cross-shard match-exchange items, by direction.",
                     {{"shard", std::to_string(shard.shard)},
                      {"direction", "received"}},
                     shard.matches_received);
  }

  if (snap.persist.enabled) {
    const PersistCounters& p = snap.persist;
    out->EmitCounter("streamworks_wal_records_total",
                     "WAL records appended this process.", {}, p.wal_records);
    out->EmitCounter("streamworks_wal_edges_total",
                     "Edges carried by appended WAL records.", {}, p.wal_edges);
    out->EmitCounter("streamworks_wal_bytes_total",
                     "Bytes appended to WAL segments.", {}, p.wal_bytes);
    out->EmitCounter("streamworks_wal_fsyncs_total", "WAL fsync calls.", {},
                     p.wal_fsyncs);
    out->EmitGauge("streamworks_wal_segments",
                   "WAL segment files currently on disk.", {},
                   static_cast<double>(p.wal_segments));
    out->EmitGauge("streamworks_wal_seq", "Next WAL edge sequence number.", {},
                   static_cast<double>(p.wal_seq));
    out->EmitCounter("streamworks_snapshots_written_total",
                     "Durable snapshots written.", {}, p.snapshots_written);
    out->EmitCounter("streamworks_snapshot_failures_total",
                     "Snapshot write attempts that failed.", {},
                     p.snapshot_failures);
    out->EmitGauge("streamworks_last_snapshot_wal_seq",
                   "WAL sequence the latest snapshot covers.", {},
                   static_cast<double>(p.last_snapshot_wal_seq));
  }

  if (snap.frontend.enabled) {
    const FrontendStatsSnapshot& f = snap.frontend;
    out->EmitCounter("streamworks_frontend_connections_total",
                     "Frontend connections, by outcome.",
                     {{"event", "accepted"}}, f.connections_accepted);
    out->EmitCounter("streamworks_frontend_connections_total",
                     "Frontend connections, by outcome.",
                     {{"event", "refused"}}, f.connections_refused);
    out->EmitCounter("streamworks_frontend_connections_total",
                     "Frontend connections, by outcome.", {{"event", "closed"}},
                     f.connections_closed);
    out->EmitCounter("streamworks_frontend_lines_executed_total",
                     "Text-protocol command lines executed.", {},
                     f.lines_executed);
    out->EmitCounter("streamworks_frontend_frames_executed_total",
                     "Binary FEEDB frames executed.", {}, f.frames_executed);
    out->EmitCounter("streamworks_frontend_batch_edges_total",
                     "Edges carried by executed FEEDB frames.", {},
                     f.batch_edges_in);
    out->EmitCounter("streamworks_frontend_protocol_errors_total",
                     "Protocol violations that closed a connection.", {},
                     f.protocol_errors);
    out->EmitCounter("streamworks_frontend_events_pushed_total",
                     "Streamed EVENT/MATCH payloads pushed to watchers.", {},
                     f.events_pushed);
    out->EmitCounter("streamworks_frontend_pump_flushes_total",
                     "Coalesced stream-pump flush passes.", {},
                     f.pump_flushes);
    out->EmitCounter("streamworks_frontend_http_requests_total",
                     "Observability HTTP requests served.", {},
                     f.http_requests);
    out->EmitCounter("streamworks_frontend_bytes_total",
                     "Wire bytes, by direction.", {{"direction", "in"}},
                     f.bytes_in);
    out->EmitCounter("streamworks_frontend_bytes_total",
                     "Wire bytes, by direction.", {{"direction", "out"}},
                     f.bytes_out);
    out->EmitCounter("streamworks_frontend_subscriptions_reclaimed_total",
                     "Subscriptions reclaimed when sessions disconnected.", {},
                     f.subscriptions_reclaimed);
    for (const IoLoopStatsSnapshot& l : f.io_loops) {
      const std::string loop = std::to_string(l.loop);
      out->EmitGauge("streamworks_io_loop_connections",
                     "Connections currently owned, by IO loop.",
                     {{"loop", loop}}, static_cast<double>(l.connections));
      out->EmitCounter("streamworks_io_loop_pump_flushes",
                       "Coalesced stream-pump flush passes, by IO loop.",
                       {{"loop", loop}}, l.pump_flushes);
    }
  }
}

void ContributePipelineMetrics(const PipelineMetrics& pipeline,
                               MetricSnapshotBuilder* out,
                               const MetricLabels& base_labels) {
  for (int s = 0; s < kNumPipelineStages; ++s) {
    const PipelineStage stage = static_cast<PipelineStage>(s);
    MetricLabels labels = base_labels;
    labels.emplace_back("stage", std::string(PipelineStageName(stage)));
    out->EmitHistogram("streamworks_stage_duration_us",
                       "Pipeline stage execution time, by stage.",
                       std::move(labels),
                       pipeline.stage_histogram(stage).Snapshot());
  }
  out->EmitCounter("streamworks_slow_ops_total",
                   "Stage executions at or above the slow threshold.",
                   base_labels, pipeline.slow_ops_recorded());
  out->EmitGauge("streamworks_slow_threshold_us",
                 "Current slow-op trace threshold.", base_labels,
                 static_cast<double>(pipeline.slow_threshold_us()));
}

int RegisterServiceCollector(
    MetricRegistry* registry,
    std::function<ServiceStatsSnapshot()> snapshot_fn) {
  return registry->AddCollector(
      [fn = std::move(snapshot_fn)](MetricSnapshotBuilder* out) {
        ContributeServiceMetrics(fn(), out);
      });
}

int RegisterPipelineCollector(MetricRegistry* registry,
                              const PipelineMetrics* pipeline,
                              MetricLabels base_labels) {
  return registry->AddCollector(
      [pipeline, labels = std::move(base_labels)](MetricSnapshotBuilder* out) {
        ContributePipelineMetrics(*pipeline, out, labels);
      });
}

}  // namespace streamworks
