#ifndef STREAMWORKS_OBS_METRIC_SAMPLE_H_
#define STREAMWORKS_OBS_METRIC_SAMPLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "streamworks/common/histogram.h"

namespace streamworks {

/// Label set of one metric sample, rendered in registration order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// One metric series at a point in time — the unit of metric federation.
/// A worker's registry flattens into a vector of these, they cross the
/// cluster wire inside a MetricsReport frame, and the coordinator's
/// snapshot builder absorbs them additively (same name+labels merge:
/// counters and gauges sum, histograms bucket-wise Merge). Lives apart
/// from the registry so stream/cluster_wire can speak samples without
/// pulling in the whole obs layer.
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  Kind kind = Kind::kCounter;
  std::string name;
  std::string help;
  MetricLabels labels;
  uint64_t counter = 0;    ///< kCounter only.
  double gauge = 0;        ///< kGauge only.
  Histogram histogram;     ///< kHistogram only.
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_METRIC_SAMPLE_H_
