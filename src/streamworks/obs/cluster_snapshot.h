#ifndef STREAMWORKS_OBS_CLUSTER_SNAPSHOT_H_
#define STREAMWORKS_OBS_CLUSTER_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace streamworks {

/// Per-stage latency digest extracted from a worker's federated
/// streamworks_stage_duration_us histograms — enough for the
/// one-pane-of-glass view without re-shipping raw buckets.
struct WorkerStageSummary {
  std::string stage;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

/// One worker row of /cluster.json: link state, report freshness, the
/// durability cursors the recovery protocol lives on, and the stage
/// digests. Filled by the coordinator under its cluster mutex.
struct WorkerObsSnapshot {
  int shard = -1;
  std::string host;
  int port = 0;
  bool connected = false;
  bool has_report = false;
  uint64_t report_age_us = 0;  ///< Age of the cached report (0 if none).
  uint64_t wal_seq = 0;        ///< Worker-reported durable frame count.
  uint64_t replayed_frames = 0;
  uint64_t exchange_items_sent = 0;
  uint64_t completions_sent = 0;
  uint64_t sent_state = 0;       ///< Coordinator-side state frames ever sent.
  uint64_t retained_frames = 0;  ///< Un-acked tail retained for resend.
  std::vector<WorkerStageSummary> stages;
};

/// The /cluster.json document root. `healthy` is the coordinator
/// /healthz input: false when any worker is disconnected or its last
/// report is older than `stale_threshold_us`.
struct ClusterObsSnapshot {
  uint64_t epochs = 0;  ///< Ingest epochs completed since start.
  uint64_t stale_threshold_us = 0;
  bool healthy = true;
  std::vector<WorkerObsSnapshot> workers;
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_CLUSTER_SNAPSHOT_H_
