#ifndef STREAMWORKS_OBS_EPOCH_TRACE_H_
#define STREAMWORKS_OBS_EPOCH_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace streamworks {

/// One completed ingest epoch of the distributed backend, decomposed into
/// the phases the coordinator drives: route + encode + send the per-worker
/// batches (`batch_us`), wait for the first barrier round's acks — the
/// round dominated by workers applying the batch (`apply_us`), forward the
/// exchange items barriers flush out of workers (`relay_us`), wait out the
/// remaining barrier rounds until a round moves nothing (`barrier_us`),
/// and broadcast the watermark commit (`commit_us`). This is the direct
/// measurement for the "barrier-dominated at small epochs" question: the
/// answer is the barrier_us share of total_us as epoch_edges shrinks.
struct EpochTraceEntry {
  uint64_t epoch = 0;  ///< Coordinator-assigned epoch id, dense from 0.
  uint64_t edges = 0;  ///< Admitted edges fanned out this epoch.
  uint64_t relay_rounds = 0;   ///< Barrier rounds that moved items.
  uint64_t relayed_items = 0;  ///< Exchange items forwarded in total.
  uint64_t batch_us = 0;
  uint64_t apply_us = 0;
  uint64_t relay_us = 0;
  uint64_t barrier_us = 0;
  uint64_t commit_us = 0;
  uint64_t total_us = 0;
  uint64_t at_us = 0;  ///< Completion time, PipelineMetrics::NowMicros.
};

/// Seqlock ring of the last N epochs, TraceRing's discipline applied to
/// the wider epoch record: the pump thread publishes entries lock-free
/// while HTTP scrapes snapshot without blocking it. Writers claim a slot
/// by CAS-ing its sequence odd and publish with a release store; readers
/// re-check the sequence after copying and drop torn slots. The epoch
/// pump is a single writer today, but the ring keeps the multi-writer
/// discipline so pipelined epochs (the ROADMAP follow-up this telemetry
/// exists to judge) need no rework.
class EpochTraceRing {
 public:
  explicit EpochTraceRing(size_t capacity);

  void Push(const EpochTraceEntry& entry);

  /// Point-in-time copy, oldest first; entries overwritten mid-read are
  /// dropped rather than returned torn.
  std::vector<EpochTraceEntry> Snapshot() const;

  size_t capacity() const { return slots_.size(); }
  uint64_t total_pushed() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kEntryWords = 11;

  struct Slot {
    /// 0 = never written; odd = write in progress; even = (claim index
    /// + 1) * 2 of the published entry.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kEntryWords> words{};
  };
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_EPOCH_TRACE_H_
