#include "streamworks/obs/metric_registry.h"

#include <cmath>
#include <cstdio>

namespace streamworks {

namespace {

/// Escapes a HELP text: backslash and newline per the exposition format.
void AppendEscapedHelp(std::string* out, std::string_view help) {
  for (const char c : help) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// Escapes a label value: backslash, double quote, newline.
void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (const char c : value) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '"') {
      *out += "\\\"";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// Renders `{k="v",...}`; empty labels render nothing. `extra_key`, when
/// non-empty, appends one more pair (the histogram `le`).
void AppendLabels(std::string* out, const MetricLabels& labels,
                  std::string_view extra_key = {},
                  std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    AppendEscapedLabelValue(out, v);
    *out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) *out += ',';
    *out += extra_key;
    *out += "=\"";
    AppendEscapedLabelValue(out, extra_value);
    *out += '"';
  }
  *out += '}';
}

std::string RenderDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

MetricSnapshotBuilder::Family* MetricSnapshotBuilder::FamilyFor(
    std::string_view name, std::string_view help, Type type) {
  if (auto it = index_.find(name); it != index_.end()) {
    return &families_[it->second];
  }
  Family family;
  family.name = std::string(name);
  family.help = std::string(help);
  family.type = type;
  index_.emplace(family.name, families_.size());
  families_.push_back(std::move(family));
  return &families_.back();
}

MetricSnapshotBuilder::Sample* MetricSnapshotBuilder::SampleFor(
    Family* family, MetricLabels&& labels) {
  for (Sample& existing : family->samples) {
    if (existing.labels == labels) return &existing;
  }
  Sample sample;
  sample.labels = std::move(labels);
  family->samples.push_back(std::move(sample));
  return &family->samples.back();
}

void MetricSnapshotBuilder::EmitCounter(std::string_view name,
                                        std::string_view help,
                                        MetricLabels labels, uint64_t value) {
  Family* family = FamilyFor(name, help, Type::kCounter);
  SampleFor(family, std::move(labels))->counter += value;
}

void MetricSnapshotBuilder::EmitGauge(std::string_view name,
                                      std::string_view help,
                                      MetricLabels labels, double value) {
  Family* family = FamilyFor(name, help, Type::kGauge);
  // Gauges federate by sum too: most cluster gauges (queue depths,
  // retained frames, open sessions) are meaningful as totals, and a sum
  // keeps the merge associative for the report codec roundtrip.
  SampleFor(family, std::move(labels))->gauge += value;
}

void MetricSnapshotBuilder::EmitHistogram(std::string_view name,
                                          std::string_view help,
                                          MetricLabels labels,
                                          const Histogram& histogram) {
  Family* family = FamilyFor(name, help, Type::kHistogram);
  SampleFor(family, std::move(labels))->histogram.Merge(histogram);
}

void MetricSnapshotBuilder::EmitSample(const MetricSample& sample) {
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      EmitCounter(sample.name, sample.help, sample.labels, sample.counter);
      break;
    case MetricSample::Kind::kGauge:
      EmitGauge(sample.name, sample.help, sample.labels, sample.gauge);
      break;
    case MetricSample::Kind::kHistogram:
      EmitHistogram(sample.name, sample.help, sample.labels, sample.histogram);
      break;
  }
}

std::vector<MetricSample> MetricSnapshotBuilder::ExportSamples() const {
  std::vector<MetricSample> out;
  for (const Family& family : families_) {
    for (const Sample& sample : family.samples) {
      MetricSample exported;
      exported.kind = family.type == Type::kCounter
                          ? MetricSample::Kind::kCounter
                          : family.type == Type::kGauge
                                ? MetricSample::Kind::kGauge
                                : MetricSample::Kind::kHistogram;
      exported.name = family.name;
      exported.help = family.help;
      exported.labels = sample.labels;
      exported.counter = sample.counter;
      exported.gauge = sample.gauge;
      exported.histogram = sample.histogram;
      out.push_back(std::move(exported));
    }
  }
  return out;
}

std::string MetricSnapshotBuilder::RenderPrometheus() const {
  std::string out;
  for (const Family& family : families_) {
    out += "# HELP ";
    out += family.name;
    out += ' ';
    AppendEscapedHelp(&out, family.help);
    out += "\n# TYPE ";
    out += family.name;
    out += ' ';
    out += family.type == Type::kCounter
               ? "counter"
               : family.type == Type::kGauge ? "gauge" : "histogram";
    out += '\n';
    for (const Sample& sample : family.samples) {
      if (family.type != Type::kHistogram) {
        out += family.name;
        AppendLabels(&out, sample.labels);
        out += ' ';
        out += family.type == Type::kCounter ? std::to_string(sample.counter)
                                             : RenderDouble(sample.gauge);
        out += '\n';
        continue;
      }
      // Histogram: cumulative buckets with integer `le` upper bounds
      // (the power-of-two scheme's inclusive bucket maxima), then +Inf,
      // _sum, _count.
      uint64_t cumulative = 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        const uint64_t count = sample.histogram.bucket_count(b);
        cumulative += count;
        // Only emit occupied or boundary-advancing buckets sparsely:
        // every bucket would be 40 lines per series. Emit buckets that
        // hold samples plus bucket 0 so the series is never empty.
        if (count == 0 && b != 0) continue;
        out += family.name;
        out += "_bucket";
        AppendLabels(&out, sample.labels, "le",
                     std::to_string(Histogram::BucketUpperBound(b)));
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      out += family.name;
      out += "_bucket";
      AppendLabels(&out, sample.labels, "le", "+Inf");
      out += ' ';
      out += std::to_string(sample.histogram.total_count());
      out += '\n';
      out += family.name;
      out += "_sum";
      AppendLabels(&out, sample.labels);
      out += ' ';
      out += std::to_string(sample.histogram.sum());
      out += '\n';
      out += family.name;
      out += "_count";
      AppendLabels(&out, sample.labels);
      out += ' ';
      out += std::to_string(sample.histogram.total_count());
      out += '\n';
    }
  }
  return out;
}

MetricCounter* MetricRegistry::RegisterCounter(std::string name,
                                               std::string help,
                                               MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  // Emplace-then-assign: the handle holds atomics, which are neither
  // movable nor copyable, so the instrument must be constructed in place.
  Instrument<MetricCounter>& inst = counters_.emplace_back();
  inst.name = std::move(name);
  inst.help = std::move(help);
  inst.labels = std::move(labels);
  return &inst.handle;
}

MetricGauge* MetricRegistry::RegisterGauge(std::string name, std::string help,
                                           MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument<MetricGauge>& inst = gauges_.emplace_back();
  inst.name = std::move(name);
  inst.help = std::move(help);
  inst.labels = std::move(labels);
  return &inst.handle;
}

AtomicHistogram* MetricRegistry::RegisterHistogram(std::string name,
                                                   std::string help,
                                                   MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument<AtomicHistogram>& inst = histograms_.emplace_back();
  inst.name = std::move(name);
  inst.help = std::move(help);
  inst.labels = std::move(labels);
  return &inst.handle;
}

int MetricRegistry::AddCollector(
    std::function<void(MetricSnapshotBuilder*)> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const int token = next_collector_token_++;
  collectors_.emplace_back(token, std::move(collector));
  return token;
}

void MetricRegistry::RemoveCollector(int token) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(collectors_,
                [token](const auto& entry) { return entry.first == token; });
}

void MetricRegistry::Collect(MetricSnapshotBuilder* builder) const {
  // Collectors may take their own time (a service Snapshot quiesces a
  // sharded backend); copy them out so registration from another thread
  // is never blocked behind a scrape.
  std::vector<std::function<void(MetricSnapshotBuilder*)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& inst : counters_) {
      builder->EmitCounter(inst.name, inst.help, inst.labels,
                           inst.handle.value());
    }
    for (const auto& inst : gauges_) {
      builder->EmitGauge(inst.name, inst.help, inst.labels,
                         inst.handle.value());
    }
    for (const auto& inst : histograms_) {
      builder->EmitHistogram(inst.name, inst.help, inst.labels,
                             inst.handle.Snapshot());
    }
    collectors.reserve(collectors_.size());
    for (const auto& [token, fn] : collectors_) collectors.push_back(fn);
  }
  for (const auto& fn : collectors) fn(builder);
}

std::string MetricRegistry::RenderPrometheus() const {
  MetricSnapshotBuilder builder;
  Collect(&builder);
  return builder.RenderPrometheus();
}

std::vector<MetricSample> MetricRegistry::ExportSamples() const {
  MetricSnapshotBuilder builder;
  Collect(&builder);
  return builder.ExportSamples();
}

}  // namespace streamworks
