#ifndef STREAMWORKS_OBS_JSON_RENDER_H_
#define STREAMWORKS_OBS_JSON_RENDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "streamworks/obs/cluster_snapshot.h"
#include "streamworks/obs/epoch_trace.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// JSON/Prometheus renderers for the observability endpoints. The split of
/// responsibilities mirrors the net layer's: net/server.cc owns socket
/// mechanics and byte shuffling, this file owns turning service snapshots
/// into documents. Everything here runs at scrape time on the control
/// thread; nothing touches hot-path state directly.

/// The /stats.json document: the full ServiceStatsSnapshot tree —
/// service-wide counters, per-session/per-subscription detail, shard
/// loads, persist and frontend counters.
std::string RenderStatsJson(const ServiceStatsSnapshot& snap);

/// The /shards.json document: just the per-shard load rows.
std::string RenderShardsJson(const ServiceStatsSnapshot& snap);

/// The /queries.json document: per-query runtime info including the
/// per-SJ-Tree-node match/selectivity counters.
std::string RenderQueriesJson(const std::vector<QueryObsSnapshot>& queries);

/// The /trace.json document: per-stage latency summaries plus the slow-op
/// trace ring, oldest first. `now_us` is PipelineMetrics::NowMicros() at
/// render time (entries carry relative ages, not wall-clock stamps).
std::string RenderTraceJson(const PipelineMetrics& pipeline, uint64_t now_us);

/// The /healthz document: liveness plus durability freshness — how far
/// the WAL has run ahead of the last snapshot, and whether snapshot
/// writes are failing.
std::string RenderHealthJson(const ServiceStatsSnapshot& snap,
                             uint64_t uptime_us);

/// Human-oriented rendering of the trace ring for the interpreter's TRACE
/// verb: one "slow stage=... dur_us=..." line per entry, oldest first.
std::string FormatTraceText(const PipelineMetrics& pipeline, uint64_t now_us);

/// The /cluster.json document: per-worker link state, report freshness,
/// recovery cursors, and stage latency digests.
std::string RenderClusterJson(const ClusterObsSnapshot& snap);

/// The coordinator's /healthz document: degraded when any worker is
/// disconnected or its last report is older than the staleness threshold.
std::string RenderClusterHealthJson(const ClusterObsSnapshot& snap);

/// The /epochs.json document: the epoch trace ring's per-epoch phase
/// durations, oldest first. `total_epochs` is the ring's lifetime push
/// count (entries may have been lapped); `now_us` is
/// PipelineMetrics::NowMicros() at render time.
std::string RenderEpochsJson(const std::vector<EpochTraceEntry>& entries,
                             uint64_t total_epochs, uint64_t now_us);

/// Emits the streamworks_* metric families derived from one service
/// snapshot into a scrape builder (counters, gauges, the delivery-lag
/// histogram, per-shard/persist/frontend series).
void ContributeServiceMetrics(const ServiceStatsSnapshot& snap,
                              MetricSnapshotBuilder* out);

/// Emits the per-stage duration histograms and slow-op counters.
/// `base_labels` prefix every series — cluster workers pass
/// {{"role","worker"}} so their federated stage histograms stay
/// distinguishable from (and never merge into) the coordinator's own.
void ContributePipelineMetrics(const PipelineMetrics& pipeline,
                               MetricSnapshotBuilder* out,
                               const MetricLabels& base_labels = {});

/// Registers a scrape-time collector calling `snapshot_fn` (typically
/// bound to QueryService::Snapshot on the control thread). Returns the
/// registry token.
int RegisterServiceCollector(MetricRegistry* registry,
                             std::function<ServiceStatsSnapshot()> snapshot_fn);

/// Registers a scrape-time collector over `pipeline`, which must outlive
/// the registration. `base_labels` prefix every emitted series (see
/// ContributePipelineMetrics). Returns the registry token.
int RegisterPipelineCollector(MetricRegistry* registry,
                              const PipelineMetrics* pipeline,
                              MetricLabels base_labels = {});

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_JSON_RENDER_H_
