#include "streamworks/obs/epoch_trace.h"

namespace streamworks {

namespace {

// Entry packed into the slot's atomic words: word-at-a-time relaxed
// stores/loads are what make the seqlock race-free in the C++ memory
// model (a plain struct copy under a racing writer is UB).
std::array<uint64_t, 11> PackEntry(const EpochTraceEntry& e) {
  return {e.epoch,    e.edges,      e.relay_rounds, e.relayed_items,
          e.batch_us, e.apply_us,   e.relay_us,     e.barrier_us,
          e.commit_us, e.total_us,  e.at_us};
}

EpochTraceEntry UnpackEntry(const std::array<uint64_t, 11>& w) {
  EpochTraceEntry e;
  e.epoch = w[0];
  e.edges = w[1];
  e.relay_rounds = w[2];
  e.relayed_items = w[3];
  e.batch_us = w[4];
  e.apply_us = w[5];
  e.relay_us = w[6];
  e.barrier_us = w[7];
  e.commit_us = w[8];
  e.total_us = w[9];
  e.at_us = w[10];
  return e;
}

}  // namespace

EpochTraceRing::EpochTraceRing(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void EpochTraceRing::Push(const EpochTraceEntry& entry) {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % slots_.size()];
  // Claim by CAS from the published (even) sequence to this claim's odd
  // marker; a failed claim means a concurrent writer lapped the ring onto
  // the slot — drop this entry rather than tear the winner's.
  const uint64_t claim = 2 * idx + 1;
  uint64_t cur = slot.seq.load(std::memory_order_relaxed);
  if (cur % 2 == 1 || cur > claim) return;
  if (!slot.seq.compare_exchange_strong(cur, claim, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    return;
  }
  const std::array<uint64_t, 11> words = PackEntry(entry);
  for (size_t i = 0; i < kEntryWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * (idx + 1), std::memory_order_release);
}

std::vector<EpochTraceEntry> EpochTraceRing::Snapshot() const {
  struct Numbered {
    uint64_t idx;
    EpochTraceEntry entry;
  };
  std::vector<Numbered> collected;
  collected.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0 || seq_before % 2 == 1) continue;
    std::array<uint64_t, 11> words;
    // Acquire word loads keep the seq re-check below from reordering
    // ahead of the copy (gcc's tsan mode has no atomic_thread_fence): an
    // unchanged sequence then proves no writer touched the slot mid-copy.
    for (size_t i = 0; i < kEntryWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_acquire);
    }
    const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
    if (seq_after != seq_before) continue;  // overwritten mid-copy: drop
    collected.push_back(Numbered{seq_before / 2 - 1, UnpackEntry(words)});
  }
  // Insertion sort by claim index: the ring is small and nearly ordered.
  for (size_t i = 1; i < collected.size(); ++i) {
    Numbered item = collected[i];
    size_t j = i;
    while (j > 0 && collected[j - 1].idx > item.idx) {
      collected[j] = collected[j - 1];
      --j;
    }
    collected[j] = item;
  }
  std::vector<EpochTraceEntry> out;
  out.reserve(collected.size());
  for (const Numbered& n : collected) out.push_back(n.entry);
  return out;
}

}  // namespace streamworks
