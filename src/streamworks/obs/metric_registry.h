#ifndef STREAMWORKS_OBS_METRIC_REGISTRY_H_
#define STREAMWORKS_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "streamworks/common/histogram.h"
#include "streamworks/obs/metric_sample.h"
#include "streamworks/obs/stage_trace.h"

namespace streamworks {

/// Monotonic counter handle; increments are relaxed atomics, safe from any
/// thread. Pointers stay valid for the registry's lifetime.
class MetricCounter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge handle (set/read from any thread).
class MetricGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Where scrape-time collectors write their samples. Samples of the same
/// metric name group into one family (first emitter's help/type win);
/// families render in first-appearance order. Re-emitting the same
/// (name, labels) series merges additively — counters and gauges sum,
/// histograms bucket-wise Merge — which is what makes one builder the
/// cluster federation point: coordinator-local emitters and absorbed
/// worker samples collapse into single cluster-wide series.
class MetricSnapshotBuilder {
 public:
  void EmitCounter(std::string_view name, std::string_view help,
                   MetricLabels labels, uint64_t value);
  void EmitGauge(std::string_view name, std::string_view help,
                 MetricLabels labels, double value);
  void EmitHistogram(std::string_view name, std::string_view help,
                     MetricLabels labels, const Histogram& histogram);
  /// Emits one flattened sample (a decoded MetricsReport entry) through
  /// the kind-matching Emit* above.
  void EmitSample(const MetricSample& sample);

  /// Flattens everything emitted so far into wire-shaped samples, in
  /// family order — what a worker packs into its MetricsReport.
  std::vector<MetricSample> ExportSamples() const;

  /// Prometheus text exposition (version 0.0.4) of everything emitted:
  /// one # HELP / # TYPE pair per family, histograms as cumulative
  /// _bucket{le=...} series plus _sum and _count, a trailing newline.
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Sample {
    MetricLabels labels;
    uint64_t counter = 0;   ///< kCounter only.
    double gauge = 0;       ///< kGauge only.
    Histogram histogram;    ///< kHistogram only.
  };
  struct Family {
    std::string name;
    std::string help;
    Type type;
    std::vector<Sample> samples;
  };

  Family* FamilyFor(std::string_view name, std::string_view help, Type type);
  /// The sample in `family` with exactly `labels`, appending if absent.
  static Sample* SampleFor(Family* family, MetricLabels&& labels);

  std::vector<Family> families_;
  std::map<std::string, size_t, std::less<>> index_;
};

/// The one registration seam the scattered counters unify behind: hot-path
/// components register counter/gauge/histogram handles (cheap atomics they
/// bump directly), and snapshot-shaped sources (the service stats tree,
/// the socket server's ServerStats, the durability probe) register
/// collectors that contribute samples at scrape time. RenderPrometheus
/// runs the collectors on the scraping thread — the HTTP endpoints run on
/// the IO loop owning the connection's fd, under the socket server's
/// control mutex, so collectors may safely make control-plane calls like
/// QueryService::Snapshot().
class MetricRegistry {
 public:
  MetricCounter* RegisterCounter(std::string name, std::string help,
                                 MetricLabels labels = {});
  MetricGauge* RegisterGauge(std::string name, std::string help,
                             MetricLabels labels = {});
  AtomicHistogram* RegisterHistogram(std::string name, std::string help,
                                     MetricLabels labels = {});

  /// Registers a scrape-time collector; returns a token for
  /// RemoveCollector. The collector must stay callable until removed —
  /// components whose lifetime is shorter than the registry's (the socket
  /// server) remove theirs on shutdown.
  int AddCollector(std::function<void(MetricSnapshotBuilder*)> collector);
  void RemoveCollector(int token);

  /// Full Prometheus text exposition: registered instruments first, then
  /// every collector's contribution.
  std::string RenderPrometheus() const;

  /// Everything RenderPrometheus would render, flattened to wire-shaped
  /// samples — what a worker snapshots into its MetricsReport frame.
  std::vector<MetricSample> ExportSamples() const;

 private:
  /// Instruments + collectors into `builder` (the shared front half of
  /// RenderPrometheus and ExportSamples).
  void Collect(MetricSnapshotBuilder* builder) const;

  template <typename Handle>
  struct Instrument {
    std::string name;
    std::string help;
    MetricLabels labels;
    Handle handle;
  };

  mutable std::mutex mu_;
  /// deques: handle pointers must survive further registration.
  std::deque<Instrument<MetricCounter>> counters_;
  std::deque<Instrument<MetricGauge>> gauges_;
  std::deque<Instrument<AtomicHistogram>> histograms_;
  std::vector<std::pair<int, std::function<void(MetricSnapshotBuilder*)>>>
      collectors_;
  int next_collector_token_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_METRIC_REGISTRY_H_
