#ifndef STREAMWORKS_OBS_HTTP_ENDPOINT_H_
#define STREAMWORKS_OBS_HTTP_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// A deliberately minimal HTTP/1.1 server side for the observability
/// endpoints: GET-only, no request bodies, one response per connection
/// (`Connection: close`). The socket server owns the sockets and calls
/// ParseHttpRequest / HttpHandler::Handle from the IO loop owning the
/// connection's fd, holding the server's control mutex across Handle —
/// exactly the serialization QueryService::Snapshot() and ShardLoads()
/// demand. A standalone unserialized HTTP thread could not make those
/// calls safely; that constraint, not minimalism, is why the endpoint
/// rides the IO loops.

/// The parsed request line. Headers are consumed but not retained —
/// nothing the endpoints serve depends on them.
struct HttpRequest {
  std::string method;  ///< "GET", uppercase as received.
  std::string target;  ///< Request target, e.g. "/metrics".
};

enum class HttpParseResult {
  kNeedMore,  ///< Head incomplete; read more bytes.
  kComplete,  ///< One request parsed; `*consumed` bytes eaten.
  kBad,       ///< Malformed request line; answer 400 and close.
};

/// Incremental parse of one request head from `buf`. Returns kComplete
/// once the blank line terminating the header block has arrived, setting
/// `*out` and `*consumed`. Tolerates bare-LF line endings (a `printf |
/// /dev/tcp` scraper is a first-class client here).
HttpParseResult ParseHttpRequest(std::string_view buf, HttpRequest* out,
                                 size_t* consumed);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Serializes status line + Content-Type/Content-Length/Connection: close
/// headers + body.
std::string EncodeHttpResponse(const HttpResponse& response);

/// Routes observability requests to renderers. All providers are invoked
/// on the calling (control) thread at request time; any may be left unset,
/// in which case its routes answer 503.
class HttpHandler {
 public:
  struct Providers {
    MetricRegistry* registry = nullptr;    ///< /metrics
    PipelineMetrics* pipeline = nullptr;   ///< /trace.json
    std::function<ServiceStatsSnapshot()> stats;  ///< /stats.json, /shards.json, /healthz
    std::function<std::vector<QueryObsSnapshot>()> queries;  ///< /queries.json
    /// Cluster deployments: pre-rendered /cluster.json and /epochs.json
    /// documents (the coordinator binds these to its federation cache and
    /// epoch trace ring).
    std::function<std::string()> cluster;
    std::function<std::string()> epochs;
    /// When set, /healthz serves this document instead of the stats-based
    /// one — how a coordinator folds worker staleness into its health and
    /// a worker daemon (which has no ServiceStatsSnapshot) reports at all.
    std::function<std::string()> health;
  };

  explicit HttpHandler(Providers providers);

  /// Answers one request: GET /metrics, /stats.json, /shards.json,
  /// /queries.json, /trace.json, /cluster.json, /epochs.json, /healthz;
  /// 404 otherwise, 405 for non-GET methods.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  Providers providers_;
  uint64_t start_us_;  ///< Handler construction time; /healthz uptime base.
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_HTTP_ENDPOINT_H_
