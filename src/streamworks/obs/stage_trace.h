#ifndef STREAMWORKS_OBS_STAGE_TRACE_H_
#define STREAMWORKS_OBS_STAGE_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "streamworks/common/histogram.h"

namespace streamworks {

/// The hot-path stages a PipelineMetrics instance times, in pipeline
/// order. Each stage is recorded where it runs:
///
///   kFrameDecode     net: decoding one binary FEEDB frame body
///   kAdmission       service: the Feed/FeedBatch control-plane section
///                    (epoch advance, counters) before the backend
///   kEngineApply     service: the backend Feed/FeedBatch call itself
///   kSjTreeJoin      core: one edge's routed anchor-plan executions
///                    (local search + upward joins), recorded only for
///                    edges that anchored at least one query
///   kExchangeForward core: serializing + queueing one cross-shard
///                    exchange item
///   kEnqueue         service: pushing one completed match into its
///                    subscription's result queue
///   kDeliveryFlush   net: one coalesced stream-pump drain+write pass
///   kExchangeRelay   cluster: one coordinator relay round — forwarding
///                    the exchange items a barrier flushed out of workers
///   kBarrierWait     cluster: coordinator time blocked awaiting one
///                    worker's BarrierAck (the settle cost the epoch
///                    timeline decomposes per phase)
enum class PipelineStage : uint8_t {
  kFrameDecode = 0,
  kAdmission,
  kEngineApply,
  kSjTreeJoin,
  kExchangeForward,
  kEnqueue,
  kDeliveryFlush,
  kExchangeRelay,
  kBarrierWait,
};

inline constexpr int kNumPipelineStages = 9;

/// Stable snake_case stage name (Prometheus label value / trace field).
std::string_view PipelineStageName(PipelineStage stage);

/// Thread-safe Histogram sibling: relaxed-atomic bucket counters so
/// engine worker threads, the poll thread, and the stream pump can all
/// record into the same instance without a lock. Record is O(1) — a
/// bit_width plus three relaxed fetch_adds — which is what keeps stage
/// instrumentation affordable on the ingest path. Snapshot() materializes
/// a plain Histogram for rendering; concurrent records may straddle the
/// copy (bucket counts and sum are each atomic, not jointly), which a
/// scrape tolerates by design.
class AtomicHistogram {
 public:
  void Record(uint64_t value) {
    int bucket = value == 0 ? 0 : std::bit_width(value);
    if (bucket >= Histogram::kNumBuckets) bucket = Histogram::kNumBuckets - 1;
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  Histogram Snapshot() const {
    std::array<uint64_t, Histogram::kNumBuckets> counts;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    return Histogram::FromBuckets(counts, sum_.load(std::memory_order_relaxed));
  }

 private:
  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> counts_{};
  std::atomic<uint64_t> sum_{0};
};

/// One slow operation captured by the trace ring.
struct TraceEntry {
  PipelineStage stage = PipelineStage::kFrameDecode;
  int32_t session_id = -1;       ///< -1 when the stage has no session.
  int32_t subscription_id = -1;  ///< -1 when the stage has no subscription.
  uint64_t duration_us = 0;
  uint64_t detail = 0;    ///< Stage-specific (e.g. edges in the batch).
  uint64_t at_us = 0;     ///< Steady-clock micros (PipelineMetrics::NowMicros).
};

/// Lock-free ring of the last N slow operations. Writers claim a slot by
/// CAS-ing its sequence to an odd in-progress marker and publish through a
/// per-slot seqlock, so concurrent writers from engine worker threads never
/// block each other and a reader never observes a torn entry — it skips
/// slots whose sequence moved under it. The payload lives in relaxed-atomic
/// words (a plain struct would race with the reader's speculative copy and
/// with a lapping writer); a writer whose claim CAS fails — another writer
/// lapped the ring onto its slot first — drops its entry rather than tear
/// the winner's. Capacity is fixed at construction.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(const TraceEntry& entry);

  /// Point-in-time copy, oldest first. Entries overwritten mid-read are
  /// dropped rather than returned torn.
  std::vector<TraceEntry> Snapshot() const;

  size_t capacity() const { return slots_.size(); }
  uint64_t total_pushed() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kEntryWords = 5;

  struct Slot {
    /// 0 = never written; odd = write in progress; even = (claim index
    /// + 1) * 2 of the published entry.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kEntryWords> words{};
  };
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

/// The always-on pipeline instrumentation bundle: one AtomicHistogram per
/// stage plus the slow-op trace ring. One instance is shared by every
/// layer of a deployment (engine options, the query service, the socket
/// server) — each records its own stages; the registry and the HTTP
/// endpoints read them all.
class PipelineMetrics {
 public:
  static constexpr uint64_t kDefaultSlowThresholdUs = 10'000;  // 10ms

  explicit PipelineMetrics(uint64_t slow_threshold_us = kDefaultSlowThresholdUs,
                           size_t trace_capacity = 128);

  /// Records one stage execution: O(1), lock-free, callable from any
  /// thread. Operations at or above the slow threshold also enter the
  /// trace ring.
  void Record(PipelineStage stage, uint64_t duration_us, int session_id = -1,
              int subscription_id = -1, uint64_t detail = 0) {
    stages_[static_cast<size_t>(stage)].Record(duration_us);
    if (duration_us >= slow_threshold_us_.load(std::memory_order_relaxed)) {
      TraceEntry e;
      e.stage = stage;
      e.session_id = session_id;
      e.subscription_id = subscription_id;
      e.duration_us = duration_us;
      e.detail = detail;
      e.at_us = NowMicros();
      ring_.Push(e);
    }
  }

  const AtomicHistogram& stage_histogram(PipelineStage stage) const {
    return stages_[static_cast<size_t>(stage)];
  }

  uint64_t slow_threshold_us() const {
    return slow_threshold_us_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_us(uint64_t threshold_us) {
    slow_threshold_us_.store(threshold_us, std::memory_order_relaxed);
  }

  std::vector<TraceEntry> TraceSnapshot() const { return ring_.Snapshot(); }
  uint64_t slow_ops_recorded() const { return ring_.total_pushed(); }

  /// Steady-clock microseconds (process-relative; only differences and
  /// ages are meaningful).
  static uint64_t NowMicros() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::array<AtomicHistogram, kNumPipelineStages> stages_;
  std::atomic<uint64_t> slow_threshold_us_;
  TraceRing ring_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_OBS_STAGE_TRACE_H_
