#include "streamworks/obs/stage_trace.h"

namespace streamworks {

std::string_view PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kFrameDecode:
      return "frame_decode";
    case PipelineStage::kAdmission:
      return "admission";
    case PipelineStage::kEngineApply:
      return "engine_apply";
    case PipelineStage::kSjTreeJoin:
      return "sjtree_join";
    case PipelineStage::kExchangeForward:
      return "exchange_forward";
    case PipelineStage::kEnqueue:
      return "enqueue";
    case PipelineStage::kDeliveryFlush:
      return "delivery_flush";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Push(const TraceEntry& entry) {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % slots_.size()];
  // Seqlock write: odd marks in-progress so a concurrent Snapshot skips
  // the slot instead of copying half-written fields.
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  slot.entry = entry;
  slot.seq.store(2 * (idx + 1), std::memory_order_release);
}

std::vector<TraceEntry> TraceRing::Snapshot() const {
  // Collect (claim index, entry) pairs whose seqlock held still across the
  // copy, then order oldest-first by claim index.
  struct Numbered {
    uint64_t idx;
    TraceEntry entry;
  };
  std::vector<Numbered> collected;
  collected.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0 || seq_before % 2 == 1) continue;
    TraceEntry copy = slot.entry;
    const uint64_t seq_after = slot.seq.load(std::memory_order_acquire);
    if (seq_after != seq_before) continue;  // overwritten mid-copy: drop
    collected.push_back(Numbered{seq_before / 2 - 1, copy});
  }
  std::vector<TraceEntry> out;
  out.reserve(collected.size());
  // Insertion sort by claim index: the ring is small (default 128) and
  // already nearly ordered.
  for (size_t i = 1; i < collected.size(); ++i) {
    Numbered item = collected[i];
    size_t j = i;
    while (j > 0 && collected[j - 1].idx > item.idx) {
      collected[j] = collected[j - 1];
      --j;
    }
    collected[j] = item;
  }
  for (const Numbered& n : collected) out.push_back(n.entry);
  return out;
}

PipelineMetrics::PipelineMetrics(uint64_t slow_threshold_us,
                                 size_t trace_capacity)
    : slow_threshold_us_(slow_threshold_us), ring_(trace_capacity) {}

}  // namespace streamworks
