#include "streamworks/obs/stage_trace.h"

namespace streamworks {

std::string_view PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kFrameDecode:
      return "frame_decode";
    case PipelineStage::kAdmission:
      return "admission";
    case PipelineStage::kEngineApply:
      return "engine_apply";
    case PipelineStage::kSjTreeJoin:
      return "sjtree_join";
    case PipelineStage::kExchangeForward:
      return "exchange_forward";
    case PipelineStage::kEnqueue:
      return "enqueue";
    case PipelineStage::kDeliveryFlush:
      return "delivery_flush";
    case PipelineStage::kExchangeRelay:
      return "exchange_relay";
    case PipelineStage::kBarrierWait:
      return "barrier_wait";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

namespace {

// TraceEntry packed into the slot's atomic words: word-at-a-time relaxed
// stores/loads are what make the seqlock race-free in the C++ memory
// model (a plain struct copy under a racing writer is UB, and TSan
// rightly flags it).
std::array<uint64_t, 5> PackEntry(const TraceEntry& e) {
  return {static_cast<uint64_t>(e.stage),
          (static_cast<uint64_t>(static_cast<uint32_t>(e.session_id)) << 32) |
              static_cast<uint32_t>(e.subscription_id),
          e.duration_us, e.detail, e.at_us};
}

TraceEntry UnpackEntry(const std::array<uint64_t, 5>& w) {
  TraceEntry e;
  e.stage = static_cast<PipelineStage>(w[0]);
  e.session_id = static_cast<int32_t>(static_cast<uint32_t>(w[1] >> 32));
  e.subscription_id = static_cast<int32_t>(static_cast<uint32_t>(w[1]));
  e.duration_us = w[2];
  e.detail = w[3];
  e.at_us = w[4];
  return e;
}

}  // namespace

void TraceRing::Push(const TraceEntry& entry) {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % slots_.size()];
  // Claim the slot by CAS from its current published (even) sequence to
  // this claim's odd in-progress marker. A failed claim means another
  // writer is mid-write on the slot or has already lapped past this
  // claim — drop this entry rather than tear the winner's (the ring is
  // diagnostics; losing a trace under that much write pressure is fine).
  const uint64_t claim = 2 * idx + 1;
  uint64_t cur = slot.seq.load(std::memory_order_relaxed);
  if (cur % 2 == 1 || cur > claim) return;
  if (!slot.seq.compare_exchange_strong(cur, claim, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    return;
  }
  const std::array<uint64_t, 5> words = PackEntry(entry);
  for (size_t i = 0; i < kEntryWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * (idx + 1), std::memory_order_release);
}

std::vector<TraceEntry> TraceRing::Snapshot() const {
  // Collect (claim index, entry) pairs whose seqlock held still across the
  // copy, then order oldest-first by claim index.
  struct Numbered {
    uint64_t idx;
    TraceEntry entry;
  };
  std::vector<Numbered> collected;
  collected.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0 || seq_before % 2 == 1) continue;
    std::array<uint64_t, 5> words;
    // Acquire word loads keep the seq re-check below from reordering
    // ahead of the copy (gcc's tsan mode has no atomic_thread_fence): an
    // unchanged sequence then proves no writer touched the slot mid-copy.
    for (size_t i = 0; i < kEntryWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_acquire);
    }
    const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
    if (seq_after != seq_before) continue;  // overwritten mid-copy: drop
    collected.push_back(Numbered{seq_before / 2 - 1, UnpackEntry(words)});
  }
  std::vector<TraceEntry> out;
  out.reserve(collected.size());
  // Insertion sort by claim index: the ring is small (default 128) and
  // already nearly ordered.
  for (size_t i = 1; i < collected.size(); ++i) {
    Numbered item = collected[i];
    size_t j = i;
    while (j > 0 && collected[j - 1].idx > item.idx) {
      collected[j] = collected[j - 1];
      --j;
    }
    collected[j] = item;
  }
  for (const Numbered& n : collected) out.push_back(n.entry);
  return out;
}

PipelineMetrics::PipelineMetrics(uint64_t slow_threshold_us,
                                 size_t trace_capacity)
    : slow_threshold_us_(slow_threshold_us), ring_(trace_capacity) {}

}  // namespace streamworks
